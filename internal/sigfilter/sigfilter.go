// Package sigfilter implements the conflict-signature prefilter of the
// lattice cascade: a fixed-size table of atomic reference counters
// indexed by key hash. Active invocations (and lock holds) publish the
// 64-bit hashes of their conflict keys by incrementing cells; an
// incoming operation probes the cells of its own keys, and a probe that
// finds only its own contribution proves no concurrent operation has
// published a possibly-equal key. The filter is the weakest, cheapest
// point of the commutativity lattice: it only ever over-approximates
// conflicts (distinct keys may share a cell, but equal keys never map
// to different cells), so a miss is a sound zero-lock admission and a
// hit merely falls through to a more precise detector.
//
// Soundness under concurrency relies on a publish-then-probe protocol:
// every participant increments its own cells before reading anyone
// else's. Go guarantees sequential consistency for the atomic
// operations involved, so of two racing operations with colliding keys
// at least one observes the other's publication — they cannot both be
// admitted by the filter.
package sigfilter

import "sync/atomic"

// DefaultBits sizes filters at 1<<16 cells (256 KiB of counters),
// keeping the per-probe false-hit probability under ~2% with a
// thousand keys published.
const DefaultBits = 16

// Filter is the counting signature table. The zero value is unusable;
// use New.
type Filter struct {
	mask  uint64
	cells []atomic.Int32
}

// New creates a filter with 1<<bits cells. Bits are clamped to [6, 24].
func New(bits int) *Filter {
	if bits < 6 {
		bits = 6
	}
	if bits > 24 {
		bits = 24
	}
	return &Filter{
		mask:  uint64(1)<<bits - 1,
		cells: make([]atomic.Int32, 1<<bits),
	}
}

// Add publishes one key hash.
func (f *Filter) Add(h uint64) { f.cells[h&f.mask].Add(1) }

// Remove retracts one published key hash.
func (f *Filter) Remove(h uint64) { f.cells[h&f.mask].Add(-1) }

// Count returns the number of publications currently in h's cell — the
// probe. A prober that has itself published must subtract its own
// contribution to the cell before interpreting the count.
func (f *Filter) Count(h uint64) int32 { return f.cells[h&f.mask].Load() }

// SameCell reports whether two hashes land in the same cell: the
// granularity at which the filter confuses distinct keys, and the
// predicate a prober uses to count its own contribution.
func (f *Filter) SameCell(a, b uint64) bool { return a&f.mask == b&f.mask }

// Stack is a lock-free Treiber stack of slot indices, used by the
// cascade detectors to manage their fixed slot tables. The head word
// packs a 32-bit ABA tag with the top index; the stack threads through
// a caller-provided next-link array indexed by slot. Indices are
// stored +1 so the zero word means empty.
type Stack struct {
	head atomic.Uint64
	next []atomic.Uint32
}

// NewStack creates a stack able to hold slot indices [0, capacity),
// initially containing all of them in ascending pop order.
func NewStack(capacity int) *Stack {
	s := &Stack{next: make([]atomic.Uint32, capacity)}
	for i := capacity - 1; i >= 0; i-- {
		s.Push(uint32(i))
	}
	return s
}

// Push returns a slot index to the stack. The caller must own the slot
// (a slot may be in the stack at most once).
func (s *Stack) Push(idx uint32) {
	for {
		old := s.head.Load()
		s.next[idx].Store(uint32(old))
		neu := (old>>32+1)<<32 | uint64(idx+1)
		if s.head.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Pop removes and returns a slot index, or ok=false when empty. A
// successful Pop transfers exclusive ownership of the slot to the
// caller; the tag in the head word prevents ABA against concurrent
// push/pop pairs.
func (s *Stack) Pop() (idx uint32, ok bool) {
	for {
		old := s.head.Load()
		top := uint32(old)
		if top == 0 {
			return 0, false
		}
		nxt := s.next[top-1].Load()
		neu := (old>>32+1)<<32 | uint64(nxt)
		if s.head.CompareAndSwap(old, neu) {
			return top - 1, true
		}
	}
}
