package stm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"commlat/internal/engine"
)

func TestReadersShare(t *testing.T) {
	v := NewVar(42)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if x, err := v.Read(tx1); err != nil || x != 42 {
		t.Fatalf("Read = %v, %v", x, err)
	}
	if x, err := v.Read(tx2); err != nil || x != 42 {
		t.Fatalf("second reader should share: %v, %v", x, err)
	}
}

func TestWriteConflictsWithReader(t *testing.T) {
	v := NewVar(1)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx2.Abort()
	if _, err := v.Read(tx1); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(tx2, 2); !engine.IsConflict(err) {
		t.Fatalf("write under reader should conflict, got %v", err)
	}
	tx1.Commit()
	if err := v.Write(tx2, 2); err != nil {
		t.Fatalf("write after reader commit: %v", err)
	}
	if v.Load() != 2 {
		t.Errorf("Load = %d", v.Load())
	}
}

func TestReadConflictsWithWriter(t *testing.T) {
	v := NewVar(1)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx2.Abort()
	if err := v.Write(tx1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Read(tx2); !engine.IsConflict(err) {
		t.Fatalf("read under writer should conflict, got %v", err)
	}
	if err := v.Write(tx2, 6); !engine.IsConflict(err) {
		t.Fatalf("write under writer should conflict, got %v", err)
	}
	tx1.Abort()
	if x, err := v.Read(tx2); err != nil || x != 1 {
		t.Fatalf("after abort Read = %v, %v (undo should restore 1)", x, err)
	}
}

func TestOwnUpgradeAndReentrancy(t *testing.T) {
	v := NewVar(1)
	tx := engine.NewTx()
	if _, err := v.Read(tx); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(tx, 2); err != nil {
		t.Fatalf("self upgrade failed: %v", err)
	}
	if x, err := v.Read(tx); err != nil || x != 2 {
		t.Fatalf("read own write = %v, %v", x, err)
	}
	if err := v.Write(tx, 3); err != nil {
		t.Fatalf("re-write failed: %v", err)
	}
	tx.Abort()
	if v.Load() != 1 {
		t.Errorf("nested undo should restore 1, got %d", v.Load())
	}
}

func TestAbortRestoresInOrder(t *testing.T) {
	a, b := NewVar("a0"), NewVar("b0")
	tx := engine.NewTx()
	if err := a.Write(tx, "a1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(tx, "b1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(tx, "a2"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if a.Load() != "a0" || b.Load() != "b0" {
		t.Errorf("abort left %q %q", a.Load(), b.Load())
	}
}

func TestReleaseFreesObject(t *testing.T) {
	v := NewVar(0)
	for i := 0; i < 100; i++ {
		tx := engine.NewTx()
		if err := v.Write(tx, i); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if i%2 == 0 {
			tx.Commit()
		} else {
			tx.Abort()
		}
	}
}

func TestConcurrentCounter(t *testing.T) {
	// N workers increment a shared counter transactionally; final value
	// must equal the number of commits.
	v := NewVar(0)
	var commits atomic.Int64
	items := make([]int, 800)
	_, err := engine.RunItems(items, engine.Options{Workers: 8}, func(tx *engine.Tx, _ int, _ *engine.Worklist[int]) error {
		x, err := v.Read(tx)
		if err != nil {
			return err
		}
		if err := v.Write(tx, x+1); err != nil {
			return err
		}
		commits.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Load() != 800 || commits.Load() != 800 {
		t.Errorf("counter = %d, commits = %d, want 800", v.Load(), commits.Load())
	}
}

func TestConcurrentDisjointVars(t *testing.T) {
	// Writes to distinct vars never conflict.
	vars := make([]*Var[int], 64)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	var conflicts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				tx := engine.NewTx()
				v := vars[w*8+r.Intn(8)] // per-worker slice of vars
				if err := v.Write(tx, i); err != nil {
					conflicts.Add(1)
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	if conflicts.Load() != 0 {
		t.Errorf("disjoint writes conflicted %d times", conflicts.Load())
	}
}

func TestVisibleReaderBlocksWriterUntilRelease(t *testing.T) {
	v := NewVar(0)
	tx1 := engine.NewTx()
	if _, err := v.Read(tx1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Spin until the writer gets in (after tx1 aborts).
		for {
			tx := engine.NewTx()
			if err := v.Write(tx, 9); err == nil {
				tx.Commit()
				return
			}
			tx.Abort()
		}
	}()
	tx1.Abort()
	<-done
	if v.Load() != 9 {
		t.Errorf("Load = %d, want 9", v.Load())
	}
}
