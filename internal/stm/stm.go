// Package stm is the memory-level conflict detection baseline: an
// object-granularity software transactional memory with eager acquisition
// and visible readers, standing in for DSTM2 in the paper's evaluation
// (§5). Conflicts are raised when a transaction writes an object another
// live transaction has read or written, or reads an object another has
// written — the concrete-commutativity specification FC of §4.3.
//
// The `-ml` ADT variants (kd-ml, uf-ml, and the read/write-lock flow
// graph) are built from stm.Var cells, so their conflict behaviour is
// exactly object/memory-level, in contrast to the semantic detectors in
// abslock and gatekeeper.
package stm

import (
	"sync"

	"commlat/internal/engine"
)

// Obj is a conflict handle: one unit of memory-level conflict detection.
// The zero value is ready to use.
type Obj struct {
	mu      sync.Mutex
	readers map[*engine.Tx]struct{}
	writer  *engine.Tx
}

// Read acquires the object in read mode for tx. It conflicts if another
// live transaction holds the object in write mode. Acquisitions are held
// until the transaction ends.
func (o *Obj) Read(tx *engine.Tx) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.writer != nil && o.writer != tx {
		return engine.Conflict("stm: object written by tx %d", o.writer.ID())
	}
	if o.readers == nil {
		o.readers = make(map[*engine.Tx]struct{})
	}
	if _, ok := o.readers[tx]; !ok && o.writer != tx {
		o.readers[tx] = struct{}{}
		tx.OnReleaser(o)
	}
	return nil
}

// Write acquires the object in write mode for tx. It conflicts if any
// other live transaction holds the object in either mode.
func (o *Obj) Write(tx *engine.Tx) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.writer != nil && o.writer != tx {
		return engine.Conflict("stm: object written by tx %d", o.writer.ID())
	}
	for r := range o.readers {
		if r != tx {
			return engine.Conflict("stm: object read by tx %d", r.ID())
		}
	}
	if o.writer == tx {
		return nil
	}
	if _, wasReader := o.readers[tx]; !wasReader {
		tx.OnReleaser(o)
	} else {
		delete(o.readers, tx) // upgrade: the write hook subsumes the read
	}
	o.writer = tx
	return nil
}

// ReleaseTx drops tx's hold on the object; the Obj is registered
// directly as its own transaction release hook (engine.Releaser), so
// acquisition allocates no closure.
func (o *Obj) ReleaseTx(tx *engine.Tx) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.readers, tx)
	if o.writer == tx {
		o.writer = nil
	}
}

// Var is a transactional variable: an Obj plus a value of type T with
// automatic undo logging on transactional writes.
type Var[T any] struct {
	o Obj
	v T
}

// NewVar creates a Var initialized to v.
func NewVar[T any](v T) *Var[T] {
	return &Var[T]{v: v}
}

// Read returns the value after acquiring the cell in read mode.
func (c *Var[T]) Read(tx *engine.Tx) (T, error) {
	if err := c.o.Read(tx); err != nil {
		var zero T
		return zero, err
	}
	return c.v, nil
}

// Write stores nv after acquiring the cell in write mode, registering an
// undo action that restores the previous value if tx aborts.
func (c *Var[T]) Write(tx *engine.Tx, nv T) error {
	if err := c.o.Write(tx); err != nil {
		return err
	}
	old := c.v
	tx.OnUndo(func() { c.v = old })
	c.v = nv
	return nil
}

// Load reads the value without conflict detection. Only safe during
// single-threaded phases (setup, validation).
func (c *Var[T]) Load() T { return c.v }

// Store writes the value without conflict detection. Only safe during
// single-threaded phases.
func (c *Var[T]) Store(v T) { c.v = v }
