package preflow

import (
	"testing"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

// handNet builds a classic small network with known max flow 23
// (CLRS figure 26.6 style).
func handNet() *flowgraph.Net {
	n := flowgraph.NewNet(6, 0, 5)
	n.AddEdge(0, 1, 16)
	n.AddEdge(0, 2, 13)
	n.AddEdge(1, 2, 10)
	n.AddEdge(2, 1, 4)
	n.AddEdge(1, 3, 12)
	n.AddEdge(3, 2, 9)
	n.AddEdge(2, 4, 14)
	n.AddEdge(4, 3, 7)
	n.AddEdge(3, 5, 20)
	n.AddEdge(4, 5, 4)
	return n
}

// bfsMaxFlow is an independent Edmonds–Karp oracle.
func bfsMaxFlow(n *flowgraph.Net) int64 {
	src, sink := n.Source(), n.Sink()
	var total int64
	for {
		// BFS for an augmenting path in the residual network.
		type hop struct {
			node int64
			arc  int
		}
		prev := make(map[int64]hop)
		prev[src] = hop{node: -1}
		queue := []int64{src}
		for len(queue) > 0 && prev[sink].node == 0 {
			u := queue[0]
			queue = queue[1:]
			for i, a := range n.Arcs(u) {
				v := int64(a.To)
				if a.Cap > 0 {
					if _, seen := prev[v]; !seen {
						prev[v] = hop{node: u, arc: i}
						queue = append(queue, v)
					}
				}
			}
		}
		if _, ok := prev[sink]; !ok {
			return total
		}
		// Bottleneck.
		amt := int64(1 << 62)
		for v := sink; v != src; {
			h := prev[v]
			if c := n.Arcs(h.node)[h.arc].Cap; c < amt {
				amt = c
			}
			v = h.node
		}
		for v := sink; v != src; {
			h := prev[v]
			if err := n.Push(h.node, h.arc, amt); err != nil {
				panic(err)
			}
			v = h.node
		}
		total += amt
	}
}

func TestSequentialHandNetwork(t *testing.T) {
	if got := Sequential(handNet()); got != 23 {
		t.Errorf("max flow = %d, want 23", got)
	}
}

func TestSequentialMatchesEdmondsKarp(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ref := bfsMaxFlow(workload.GenRMF(3, 4, 1, 100, seed))
		got := Sequential(workload.GenRMF(3, 4, 1, 100, seed))
		if got != ref {
			t.Errorf("seed %d: preflow = %d, Edmonds-Karp = %d", seed, got, ref)
		}
	}
}

func graphVariants(mk func() *flowgraph.Net) map[string]func() *flowgraph.Graph {
	return map[string]func() *flowgraph.Graph{
		"ml":   func() *flowgraph.Graph { return flowgraph.NewRW(mk()) },
		"ex":   func() *flowgraph.Graph { return flowgraph.NewExclusive(mk()) },
		"part": func() *flowgraph.Graph { return flowgraph.NewPartitioned(mk(), 8) },
	}
}

func TestSpeculativeAllSchemes(t *testing.T) {
	mk := func() *flowgraph.Net { return workload.GenRMF(3, 3, 1, 50, 7) }
	want := Sequential(mk())
	for name, g := range graphVariants(mk) {
		for _, workers := range []int{1, 4} {
			flow, stats, err := Run(g(), engine.Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s/%d workers: %v", name, workers, err)
			}
			if flow != want {
				t.Errorf("%s/%d workers: flow = %d, want %d (stats %+v)", name, workers, flow, want, stats)
			}
		}
	}
}

func TestSpeculativeHandNetwork(t *testing.T) {
	for name, g := range graphVariants(handNet) {
		flow, _, err := Run(g(), engine.Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if flow != 23 {
			t.Errorf("%s: flow = %d, want 23", name, flow)
		}
	}
}

func TestProfileSchemesOrdering(t *testing.T) {
	mk := func() *flowgraph.Net { return workload.GenRMF(4, 4, 1, 50, 3) }
	want := Sequential(mk())

	results := map[string]ProfileResult{}
	for name, g := range graphVariants(mk) {
		res, err := Profile(g())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Flow != want {
			t.Fatalf("%s: profiled flow = %d, want %d", name, res.Flow, want)
		}
		results[name] = res
	}
	// The lattice ordering must show up as parallelism ordering:
	// ml (r/w locks) ≥ ex (exclusive) ≥ part (32-way coarsened), as in
	// Table 1.
	if results["ml"].AvgParallelism < results["ex"].AvgParallelism {
		t.Errorf("ml parallelism (%v) should be ≥ ex (%v)",
			results["ml"].AvgParallelism, results["ex"].AvgParallelism)
	}
	if results["ex"].AvgParallelism < results["part"].AvgParallelism {
		t.Errorf("ex parallelism (%v) should be ≥ part (%v)",
			results["ex"].AvgParallelism, results["part"].AvgParallelism)
	}
	t.Logf("parallelism: ml=%.2f ex=%.2f part=%.2f",
		results["ml"].AvgParallelism, results["ex"].AvgParallelism, results["part"].AvgParallelism)
}

func TestGenRMFShape(t *testing.T) {
	net := workload.GenRMF(3, 2, 1, 10, 1)
	if net.Len() != 18 {
		t.Errorf("nodes = %d, want 18", net.Len())
	}
	if net.Source() != 0 || net.Sink() != 17 {
		t.Errorf("src/sink = %d/%d", net.Source(), net.Sink())
	}
	// Flow must be positive and bounded by the inter-frame cut (9 arcs of
	// capacity ≤ 10).
	flow := Sequential(net)
	if flow <= 0 || flow > 90 {
		t.Errorf("flow = %d out of expected range", flow)
	}
}
