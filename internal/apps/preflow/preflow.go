// Package preflow implements the Goldberg–Tarjan preflow-push max-flow
// algorithm, the paper's first case study (§5): a sequential reference
// and a speculative driver whose iterations discharge one active node
// through a transactionally guarded flow graph. The conflict-detection
// scheme is whatever flowgraph.Graph the caller supplies — read/write
// node locks ("ml"), exclusive locks ("ex") or partition locks ("part").
package preflow

import (
	"fmt"
	"math"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/engine"
	"commlat/internal/parameter"
)

// Sequential computes the maximum flow of net with a FIFO preflow-push,
// mutating net. It returns the flow value (the sink's excess).
func Sequential(net *flowgraph.Net) int64 {
	n := int64(net.Len())
	src, sink := net.Source(), net.Sink()
	net.SetHeight(src, n)
	queue := saturateSource(net)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == src || u == sink {
			continue
		}
		queue = append(queue, dischargeSeq(net, u)...)
	}
	return net.Excess(sink)
}

// saturateSource pushes the source's full capacity outward and returns
// the initially active nodes.
func saturateSource(net *flowgraph.Net) []int64 {
	src, sink := net.Source(), net.Sink()
	var active []int64
	arcs := net.Arcs(src)
	for i := range arcs {
		if arcs[i].Cap > 0 {
			v := int64(arcs[i].To)
			amt := arcs[i].Cap
			net.AddExcess(src, amt) // keep Push's bookkeeping balanced
			if err := net.Push(src, i, amt); err != nil {
				panic(fmt.Sprintf("preflow: saturating push failed: %v", err))
			}
			if v != sink {
				active = append(active, v)
			}
		}
	}
	return active
}

// dischargeSeq pushes u's excess along admissible arcs, relabeling when
// stuck; it returns newly activated nodes (possibly including u itself).
func dischargeSeq(net *flowgraph.Net, u int64) []int64 {
	src, sink := net.Source(), net.Sink()
	var activated []int64
	e := net.Excess(u)
	if e <= 0 {
		return nil
	}
	hu := net.Height(u)
	arcs := net.Arcs(u)
	for i := range arcs {
		if e == 0 {
			break
		}
		if arcs[i].Cap <= 0 {
			continue
		}
		v := int64(arcs[i].To)
		if hu != net.Height(v)+1 {
			continue
		}
		amt := min64(e, arcs[i].Cap)
		if err := net.Push(u, i, amt); err != nil {
			panic(fmt.Sprintf("preflow: %v", err))
		}
		e -= amt
		if v != src && v != sink {
			activated = append(activated, v)
		}
	}
	if e > 0 {
		// Relabel: one above the lowest residual neighbor.
		minH := int64(math.MaxInt64)
		for i := range arcs {
			if arcs[i].Cap > 0 {
				if h := net.Height(int64(arcs[i].To)); h < minH {
					minH = h
				}
			}
		}
		if minH < math.MaxInt64 {
			net.SetHeight(u, minH+1)
			activated = append(activated, u)
		}
	}
	return activated
}

// Discharge is one speculative iteration: the transactional analogue of
// dischargeSeq against a guarded graph. It reports whether it performed
// real work (pushed or relabeled).
func Discharge(tx *engine.Tx, g *flowgraph.Graph, u int64, push func(int64)) (bool, error) {
	src, sink := g.Net().Source(), g.Net().Sink()
	if u == src || u == sink {
		return false, nil
	}
	e, err := g.Excess(tx, u)
	if err != nil {
		return false, err
	}
	if e <= 0 {
		return false, nil
	}
	hu, err := g.Height(tx, u)
	if err != nil {
		return false, err
	}
	arcs, err := g.Neighbors(tx, u)
	if err != nil {
		return false, err
	}
	worked := false
	for i := range arcs {
		if e == 0 {
			break
		}
		if arcs[i].Cap <= 0 {
			continue
		}
		v := int64(arcs[i].To)
		hv, err := g.Height(tx, v)
		if err != nil {
			return worked, err
		}
		if hu != hv+1 {
			continue
		}
		amt := min64(e, arcs[i].Cap)
		if err := g.Push(tx, u, i, amt); err != nil {
			return worked, err
		}
		worked = true
		arcs[i].Cap -= amt
		e -= amt
		if v != src && v != sink {
			push(v)
		}
	}
	if e > 0 {
		minH := int64(math.MaxInt64)
		for i := range arcs {
			if arcs[i].Cap <= 0 {
				continue
			}
			hv, err := g.Height(tx, int64(arcs[i].To))
			if err != nil {
				return worked, err
			}
			if hv < minH {
				minH = hv
			}
		}
		if minH < math.MaxInt64 {
			if err := g.Relabel(tx, u, minH+1); err != nil {
				return worked, err
			}
			worked = true
			push(u)
		}
	}
	return worked, nil
}

// Run computes the max flow speculatively over the guarded graph g,
// whose underlying network must be freshly built (un-run). It returns
// the flow value and the executor statistics.
func Run(g *flowgraph.Graph, opts engine.Options) (int64, engine.Stats, error) {
	net := g.Net()
	net.SetHeight(net.Source(), int64(net.Len()))
	active := saturateSource(net)
	wl := engine.NewWorklist(active...)
	stats, err := engine.Run(wl, opts, func(tx *engine.Tx, u int64, wl *engine.Worklist[int64]) error {
		_, err := Discharge(tx, g, u, func(v int64) { wl.Push(v) })
		return err
	})
	if err != nil {
		return 0, stats, err
	}
	return net.Excess(net.Sink()), stats, nil
}

// ProfileResult bundles a parallelism profile with the computed flow.
type ProfileResult struct {
	parameter.Result
	Flow int64
}

// Profile runs the ParaMeter-style round scheduler over the discharge
// iterations (Table 1's critical path / parallelism columns).
func Profile(g *flowgraph.Graph) (ProfileResult, error) {
	net := g.Net()
	net.SetHeight(net.Source(), int64(net.Len()))
	active := saturateSource(net)
	res, err := parameter.Profile(active, func(tx *engine.Tx, u int64, push func(int64)) (bool, error) {
		return Discharge(tx, g, u, push)
	})
	return ProfileResult{Result: res, Flow: net.Excess(net.Sink())}, err
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
