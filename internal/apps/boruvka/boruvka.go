// Package boruvka implements Borůvka's minimum-spanning-tree algorithm
// over a union-find structure, the paper's general-gatekeeping case
// study (§5): each iteration picks a component, finds its lightest
// outgoing edge, merges the two components and adds the edge to the MST.
// The union-find variant (uf-ml, uf-gk or the generic engine) is the
// conflict detector under study; component edge lists and the MST log
// are boosted auxiliary structures whose accesses are serialized by the
// union-find operations each iteration performs first.
package boruvka

import (
	"sort"
	"sync"

	"commlat/internal/abslock"
	"commlat/internal/adt/unionfind"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/parameter"
	"commlat/internal/workload"
)

// compEdges tracks, per live component representative, the candidate
// outgoing edges (with lazy deletion of intra-component edges). It is a
// boosted auxiliary structure (the paper boosts everything except the
// structure under study): a synthesized abstract-locking scheme over a
// tiny get/merge specification serializes iterations that touch the same
// component lists, so the replace-style merge bookkeeping never races.
type compEdges struct {
	mgr   *abslock.Manager
	mu    sync.Mutex
	edges map[int64][]workload.Edge
}

// compsSpec: scans of the same component share; merges conflict with any
// access to either component involved.
func compsSpec() *core.Spec {
	sig := &core.ADTSig{Name: "compedges", Methods: []core.MethodSig{
		{Name: "get", Params: []string{"r"}, HasRet: true},
		{Name: "merge", Params: []string{"w", "l"}},
	}}
	s := core.NewSpec(sig)
	s.Set("get", "get", core.True())
	s.Set("get", "merge", core.And(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Ne(core.Arg1(0), core.Arg2(1)),
	))
	s.Set("merge", "merge", core.And(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Ne(core.Arg1(0), core.Arg2(1)),
		core.Ne(core.Arg1(1), core.Arg2(0)),
		core.Ne(core.Arg1(1), core.Arg2(1)),
	))
	return s
}

func newCompEdges(n int, edges []workload.Edge) *compEdges {
	scheme, err := abslock.Synthesize(compsSpec())
	if err != nil {
		panic(err) // the comps spec is SIMPLE by construction
	}
	c := &compEdges{
		mgr:   abslock.NewManager(scheme.Reduce(), nil),
		edges: make(map[int64][]workload.Edge, n),
	}
	for _, e := range edges {
		c.edges[e.U] = append(c.edges[e.U], e)
		c.edges[e.V] = append(c.edges[e.V], workload.Edge{U: e.V, V: e.U, W: e.W})
	}
	return c
}

// get returns component r's candidate list under a read lock on r.
func (c *compEdges) get(tx *engine.Tx, r int64) ([]workload.Edge, error) {
	if err := c.mgr.PreAcquire(tx, "get", core.Args1(core.VInt(r))); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.edges[r], nil
}

// merge replaces the winner's list and deletes the loser's, registering
// an exact undo with tx. Both components are exclusively locked.
func (c *compEdges) merge(tx *engine.Tx, winner, loser int64, merged []workload.Edge) error {
	if err := c.mgr.PreAcquire(tx, "merge", core.Args2(core.VInt(winner), core.VInt(loser))); err != nil {
		return err
	}
	c.mu.Lock()
	oldW := c.edges[winner]
	oldL, hadL := c.edges[loser]
	c.edges[winner] = merged
	delete(c.edges, loser)
	c.mu.Unlock()
	tx.OnUndo(func() {
		c.mu.Lock()
		c.edges[winner] = oldW
		if hadL {
			c.edges[loser] = oldL
		}
		c.mu.Unlock()
	})
	return nil
}

// seqGet and seqMerge are the lock-free variants for the sequential
// baseline.
func (c *compEdges) seqGet(r int64) []workload.Edge { return c.edges[r] }

func (c *compEdges) seqMerge(winner, loser int64, merged []workload.Edge) {
	c.edges[winner] = merged
	delete(c.edges, loser)
}

// mstLog accumulates accepted edges with abort tombstones.
type mstLog struct {
	mu    sync.Mutex
	edges []*mstEdge
}

type mstEdge struct {
	e       workload.Edge
	aborted bool
}

func (l *mstLog) add(e workload.Edge) func() {
	l.mu.Lock()
	me := &mstEdge{e: e}
	l.edges = append(l.edges, me)
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		me.aborted = true
		l.mu.Unlock()
	}
}

func (l *mstLog) committed() []workload.Edge {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []workload.Edge
	for _, me := range l.edges {
		if !me.aborted {
			out = append(out, me.e)
		}
	}
	return out
}

// Result summarizes an MST computation.
type Result struct {
	Weight float64
	Edges  int
	Stats  engine.Stats
}

// step is one Borůvka iteration on component representative item.
func step(tx *engine.Tx, uf unionfind.Sets, comps *compEdges, mst *mstLog,
	item int64, push func(int64)) (bool, error) {
	r, err := uf.Find(tx, item)
	if err != nil {
		return false, err
	}
	if r != item {
		return false, nil // stale: this component was merged away
	}
	edges, err := comps.get(tx, r)
	if err != nil {
		return false, err
	}
	best := workload.Edge{W: -1}
	var bestRep int64
	surviving := edges[:0:0]
	for _, e := range edges {
		rv, err := uf.Find(tx, e.V)
		if err != nil {
			return false, err
		}
		if rv == r {
			continue // intra-component: lazily dropped
		}
		surviving = append(surviving, e)
		if best.W < 0 || e.W < best.W {
			best = e
			bestRep = rv
		}
	}
	if best.W < 0 {
		return false, nil // no outgoing edge: spanning tree of this component done
	}
	if _, err := uf.Union(tx, r, bestRep); err != nil {
		return false, err
	}
	// Static priorities: the higher-numbered representative wins.
	winner, loser := r, bestRep
	if winner < loser {
		winner, loser = loser, winner
	}
	// Merge candidate lists: r's surviving outgoing edges plus the other
	// side's current list (whose intra edges are culled lazily on later
	// scans), stored under the winning representative.
	otherEdges, err := comps.get(tx, bestRep)
	if err != nil {
		return false, err
	}
	merged := append(append([]workload.Edge(nil), surviving...), otherEdges...)
	if err := comps.merge(tx, winner, loser, merged); err != nil {
		return false, err
	}
	tx.OnUndo(mst.add(best))
	push(winner)
	return true, nil
}

// Run computes the MST weight of the graph speculatively using the given
// union-find variant.
func Run(uf unionfind.Sets, nodes int, edges []workload.Edge, opts engine.Options) (Result, error) {
	comps := newCompEdges(nodes, edges)
	mst := &mstLog{}
	items := make([]int64, nodes)
	for i := range items {
		items[i] = int64(i)
	}
	wl := engine.NewWorklist(items...)
	stats, err := engine.Run(wl, opts, func(tx *engine.Tx, item int64, wl *engine.Worklist[int64]) error {
		_, err := step(tx, uf, comps, mst, item, func(v int64) { wl.Push(v) })
		return err
	})
	res := Result{Stats: stats}
	for _, e := range mst.committed() {
		res.Weight += e.W
		res.Edges++
	}
	return res, err
}

// ProfileResult bundles a parallelism profile with the MST result.
type ProfileResult struct {
	parameter.Result
	Weight float64
	Edges  int
}

// Profile measures the parallelism of the computation under the given
// union-find variant (Table 1's uf-ml vs uf-gk rows).
func Profile(uf unionfind.Sets, nodes int, edges []workload.Edge) (ProfileResult, error) {
	comps := newCompEdges(nodes, edges)
	mst := &mstLog{}
	items := make([]int64, nodes)
	for i := range items {
		items[i] = int64(i)
	}
	res, err := parameter.Profile(items, func(tx *engine.Tx, item int64, push func(int64)) (bool, error) {
		return step(tx, uf, comps, mst, item, push)
	})
	out := ProfileResult{Result: res}
	for _, e := range mst.committed() {
		out.Weight += e.W
		out.Edges++
	}
	return out, err
}

// Sequential computes the MST weight with plain Borůvka (no conflict
// detection): the serial baseline for overhead measurements.
func Sequential(nodes int, edges []workload.Edge) (float64, int) {
	f := unionfind.NewForest(nodes)
	comps := newCompEdges(nodes, edges)
	queue := make([]int64, nodes)
	for i := range queue {
		queue[i] = int64(i)
	}
	var weight float64
	count := 0
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		if f.FindNoCompress(item) != item {
			continue
		}
		r := item
		best := workload.Edge{W: -1}
		var bestRep int64
		var surviving []workload.Edge
		for _, e := range comps.seqGet(r) {
			rv := f.Find(e.V)
			if rv == r {
				continue
			}
			surviving = append(surviving, e)
			if best.W < 0 || e.W < best.W {
				best, bestRep = e, rv
			}
		}
		if best.W < 0 {
			continue
		}
		f.Union(r, bestRep)
		winner, loser := r, bestRep
		if winner < loser {
			winner, loser = loser, winner
		}
		comps.seqMerge(winner, loser, append(surviving, comps.seqGet(bestRep)...))
		weight += best.W
		count++
		queue = append(queue, winner)
	}
	return weight, count
}

// Kruskal is an independent MST oracle (sort + plain union-find).
func Kruskal(nodes int, edges []workload.Edge) (float64, int) {
	sorted := append([]workload.Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].W < sorted[j].W })
	f := unionfind.NewForest(nodes)
	var weight float64
	count := 0
	for _, e := range sorted {
		if f.Union(e.U, e.V) {
			weight += e.W
			count++
		}
	}
	return weight, count
}
