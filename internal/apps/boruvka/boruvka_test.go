package boruvka

import (
	"math"
	"testing"

	"commlat/internal/adt/unionfind"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKruskalVsSequential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nodes, edges := workload.Mesh(6, 6, seed)
		kw, kc := Kruskal(nodes, edges)
		sw, sc := Sequential(nodes, edges)
		if kc != nodes-1 || sc != nodes-1 {
			t.Fatalf("seed %d: edge counts %d/%d, want %d", seed, kc, sc, nodes-1)
		}
		if !almostEqual(kw, sw) {
			t.Errorf("seed %d: Kruskal %v vs Boruvka %v", seed, kw, sw)
		}
	}
}

func TestKruskalVsSequentialRandomGraph(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		edges := workload.RandomGraph(40, 80, seed)
		kw, kc := Kruskal(40, edges)
		sw, sc := Sequential(40, edges)
		if kc != 39 || sc != 39 || !almostEqual(kw, sw) {
			t.Errorf("seed %d: kruskal %v/%d vs boruvka %v/%d", seed, kw, kc, sw, sc)
		}
	}
}

func ufVariants(n int) map[string]unionfind.Sets {
	return map[string]unionfind.Sets{
		"uf-ml":      unionfind.NewML(n),
		"uf-gk":      unionfind.NewGK(n),
		"uf-generic": unionfind.NewGeneric(n),
	}
}

func TestRunAllVariants(t *testing.T) {
	nodes, edges := workload.Mesh(8, 8, 3)
	want, wantEdges := Kruskal(nodes, edges)
	for name, uf := range ufVariants(nodes) {
		for _, workers := range []int{1, 4} {
			res, err := Run(uf, nodes, edges, engine.Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, workers, err)
			}
			if res.Edges != wantEdges || !almostEqual(res.Weight, want) {
				t.Errorf("%s/%d: MST %v/%d, want %v/%d (stats %+v)",
					name, workers, res.Weight, res.Edges, want, wantEdges, res.Stats)
			}
			// Reuse the variant requires a fresh forest; rebuild.
			uf = ufVariants(nodes)[name]
		}
	}
}

func TestRunDisconnectedGraph(t *testing.T) {
	// Two disjoint triangles: a spanning forest of 4 edges.
	edges := []workload.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
		{U: 3, V: 4, W: 4}, {U: 4, V: 5, W: 5}, {U: 3, V: 5, W: 6},
	}
	want, wantEdges := Kruskal(6, edges)
	res, err := Run(unionfind.NewGK(6), 6, edges, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != wantEdges || !almostEqual(res.Weight, want) {
		t.Errorf("forest %v/%d, want %v/%d", res.Weight, res.Edges, want, wantEdges)
	}
}

func TestProfileVariants(t *testing.T) {
	nodes, edges := workload.Mesh(8, 8, 11)
	want, wantEdges := Kruskal(nodes, edges)
	var gk, ml ProfileResult
	var err error
	if ml, err = Profile(unionfind.NewML(nodes), nodes, edges); err != nil {
		t.Fatal(err)
	}
	if gk, err = Profile(unionfind.NewGK(nodes), nodes, edges); err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]ProfileResult{"uf-ml": ml, "uf-gk": gk} {
		if res.Edges != wantEdges || !almostEqual(res.Weight, want) {
			t.Errorf("%s: MST %v/%d, want %v/%d", name, res.Weight, res.Edges, want, wantEdges)
		}
	}
	// The paper's curious observation: general gatekeeping offers no
	// parallelism advantage here (Boruvka performs no interfering finds),
	// so the two profiles should be in the same ballpark. We assert only
	// that both expose substantial parallelism.
	if ml.AvgParallelism < 2 || gk.AvgParallelism < 2 {
		t.Errorf("parallelism too low: ml=%v gk=%v", ml.AvgParallelism, gk.AvgParallelism)
	}
	t.Logf("uf-ml: path=%d par=%.2f; uf-gk: path=%d par=%.2f",
		ml.CriticalPath, ml.AvgParallelism, gk.CriticalPath, gk.AvgParallelism)
}

func TestCompEdgesGuarding(t *testing.T) {
	comps := newCompEdges(4, []workload.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := comps.get(tx1, 0); err != nil {
		t.Fatal(err)
	}
	// Reads share.
	if _, err := comps.get(tx2, 0); err != nil {
		t.Fatalf("concurrent get should share: %v", err)
	}
	// A merge touching component 0 conflicts with the readers.
	tx3 := engine.NewTx()
	defer tx3.Abort()
	if err := comps.merge(tx3, 1, 0, nil); !engine.IsConflict(err) {
		t.Fatalf("merge under readers should conflict, got %v", err)
	}
	// A merge of unrelated components proceeds.
	if err := comps.merge(tx3, 3, 2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSTLogTombstones(t *testing.T) {
	l := &mstLog{}
	undo := l.add(workload.Edge{W: 1})
	l.add(workload.Edge{W: 2})
	undo()
	got := l.committed()
	if len(got) != 1 || got[0].W != 2 {
		t.Errorf("committed = %+v", got)
	}
}

func TestStarGraph(t *testing.T) {
	// A star: every leaf's best edge goes to the hub; heavy contention on
	// the hub component exercises retry paths.
	var edges []workload.Edge
	for i := int64(1); i <= 12; i++ {
		edges = append(edges, workload.Edge{U: 0, V: i, W: float64(i)})
	}
	want, wantEdges := Kruskal(13, edges)
	for name, uf := range ufVariants(13) {
		res, err := Run(uf, 13, edges, engine.Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Edges != wantEdges || !almostEqual(res.Weight, want) {
			t.Errorf("%s: %v/%d, want %v/%d", name, res.Weight, res.Edges, want, wantEdges)
		}
	}
}
