package cluster

import (
	"fmt"
	"testing"

	"commlat/internal/adt/kdtree"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

func TestSequentialMergesAll(t *testing.T) {
	pts := workload.RandomPoints(40, 100, 1)
	d := Sequential(pts)
	merges := d.Merges()
	if len(merges) != len(pts)-1 {
		t.Fatalf("merges = %d, want %d", len(merges), len(pts)-1)
	}
	validateDendrogram(t, pts, merges)
}

// validateDendrogram checks the structural invariants: every input point
// is consumed exactly once, every merge consumes two live clusters and
// produces their midpoint, and exactly one cluster survives.
func validateDendrogram(t *testing.T, pts []kdtree.Point, merges []Merge) {
	t.Helper()
	live := map[kdtree.Point]bool{}
	for _, p := range pts {
		if live[p] {
			t.Fatal("duplicate input point")
		}
		live[p] = true
	}
	for i, m := range merges {
		if !live[m.A] || !live[m.B] {
			t.Fatalf("merge %d consumes dead cluster: %+v", i, m)
		}
		if m.Parent != Midpoint(m.A, m.B) {
			t.Fatalf("merge %d parent is not the midpoint", i)
		}
		delete(live, m.A)
		delete(live, m.B)
		if live[m.Parent] {
			t.Fatalf("merge %d produces duplicate cluster", i)
		}
		live[m.Parent] = true
	}
	if len(live) != 1 {
		t.Fatalf("%d clusters survive, want 1", len(live))
	}
}

func indexVariants() map[string]func() kdtree.Index {
	return map[string]func() kdtree.Index{
		"kd-ml": func() kdtree.Index { return kdtree.NewML() },
		"kd-gk": func() kdtree.Index { return kdtree.NewGK() },
		// The strengthened-SIMPLE lock point: correct but serializes
		// queries against mutators (the paper skips it for Table 1
		// because it "merely prevents add and nearest from executing
		// concurrently"; we keep it to validate correctness).
		"kd-lock": func() kdtree.Index { return kdtree.NewLocked() },
	}
}

func TestRunSingleWorkerMatchesSequential(t *testing.T) {
	pts := workload.RandomPoints(60, 100, 2)
	want := Sequential(pts).Merges()
	for name, mk := range indexVariants() {
		d, res, err := Run(mk(), pts, engine.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := d.Merges()
		if len(got) != len(want) {
			t.Fatalf("%s: %d merges, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: merge %d = %+v, want %+v (single worker should match the sequential order)", name, i, got[i], want[i])
			}
		}
		if res.Stats.Aborts != 0 {
			t.Errorf("%s: single worker aborted %d times", name, res.Stats.Aborts)
		}
	}
}

func TestRunParallelAllVariants(t *testing.T) {
	pts := workload.RandomPoints(120, 100, 3)
	for name, mk := range indexVariants() {
		idx := mk()
		d, res, err := Run(idx, pts, engine.Options{Workers: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		merges := d.Merges()
		if len(merges) != len(pts)-1 {
			t.Fatalf("%s: %d merges, want %d (stats %+v)", name, len(merges), len(pts)-1, res.Stats)
		}
		validateDendrogram(t, pts, merges)
		if idx.Len() != 1 {
			t.Errorf("%s: %d points left in tree", name, idx.Len())
		}
	}
}

func TestProfileGKBeatsML(t *testing.T) {
	pts := workload.RandomPoints(100, 100, 4)
	results := map[string]ProfileResult{}
	for name, mk := range indexVariants() {
		res, err := Profile(mk(), pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Merges != len(pts)-1 {
			t.Fatalf("%s: %d merges, want %d", name, res.Merges, len(pts)-1)
		}
		results[name] = res
	}
	// Table 1's headline: the gatekeeper exposes (much) more parallelism
	// than memory-level detection, whose critical path is an order of
	// magnitude longer.
	if results["kd-gk"].AvgParallelism <= results["kd-ml"].AvgParallelism {
		t.Errorf("kd-gk parallelism (%v) should exceed kd-ml (%v)",
			results["kd-gk"].AvgParallelism, results["kd-ml"].AvgParallelism)
	}
	if results["kd-gk"].CriticalPath >= results["kd-ml"].CriticalPath {
		t.Errorf("kd-gk critical path (%d) should be shorter than kd-ml (%d)",
			results["kd-gk"].CriticalPath, results["kd-ml"].CriticalPath)
	}
	t.Logf("kd-ml: path=%d par=%.2f; kd-gk: path=%d par=%.2f",
		results["kd-ml"].CriticalPath, results["kd-ml"].AvgParallelism,
		results["kd-gk"].CriticalPath, results["kd-gk"].AvgParallelism)
}

func TestMidpoint(t *testing.T) {
	got := Midpoint(kdtree.Point{0, 2, 4}, kdtree.Point{2, 4, 8})
	if got != (kdtree.Point{1, 3, 6}) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestDendrogramTombstones(t *testing.T) {
	d := &Dendrogram{}
	undo := d.add(kdtree.Point{1, 0, 0}, kdtree.Point{2, 0, 0}, kdtree.Point{1.5, 0, 0})
	d.add(kdtree.Point{3, 0, 0}, kdtree.Point{4, 0, 0}, kdtree.Point{3.5, 0, 0})
	undo()
	merges := d.Merges()
	if len(merges) != 1 || merges[0].A != (kdtree.Point{3, 0, 0}) {
		t.Errorf("Merges = %+v", merges)
	}
}

func TestTwoPoints(t *testing.T) {
	pts := []kdtree.Point{{0, 0, 0}, {1, 1, 1}}
	for name, mk := range indexVariants() {
		d, _, err := Run(mk(), pts, engine.Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(d.Merges()) != 1 {
			t.Errorf("%s: merges = %d", name, len(d.Merges()))
		}
	}
}

func TestSinglePointNoMerges(t *testing.T) {
	d, _, err := Run(kdtree.NewGK(), []kdtree.Point{{5, 5, 5}}, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges()) != 0 {
		t.Errorf("merges = %d, want 0", len(d.Merges()))
	}
}

func ExampleSequential() {
	pts := []kdtree.Point{{0, 0, 0}, {1, 0, 0}, {10, 0, 0}, {11, 0, 0}}
	d := Sequential(pts)
	fmt.Println(len(d.Merges()), "merges")
	// Output: 3 merges
}
