// Package cluster implements agglomerative clustering over a kd-tree,
// the paper's forward-gatekeeping case study (§5, after Walter et al.):
// repeatedly find reciprocal nearest-neighbour pairs, replace them with
// their midpoint cluster, and record the merge in a dendrogram, until a
// single cluster remains. Iterations run speculatively over any guarded
// kd-tree variant (kd-ml or kd-gk).
package cluster

import (
	"sync"

	"commlat/internal/adt/kdtree"
	"commlat/internal/engine"
	"commlat/internal/parameter"
)

// Merge is one dendrogram node: two clusters replaced by their midpoint.
type Merge struct {
	A, B, Parent kdtree.Point
	aborted      bool
}

// Dendrogram accumulates merges; aborted transactions tombstone their
// records (the merge log is a boosted auxiliary structure, like the
// paper's worklists).
type Dendrogram struct {
	mu     sync.Mutex
	merges []*Merge
}

// add records a merge and returns an undo that tombstones it.
func (d *Dendrogram) add(a, b, parent kdtree.Point) func() {
	d.mu.Lock()
	m := &Merge{A: a, B: b, Parent: parent}
	d.merges = append(d.merges, m)
	d.mu.Unlock()
	return func() {
		d.mu.Lock()
		m.aborted = true
		d.mu.Unlock()
	}
}

// Merges returns the committed merges in commit order.
func (d *Dendrogram) Merges() []Merge {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Merge, 0, len(d.merges))
	for _, m := range d.merges {
		if !m.aborted {
			out = append(out, *m)
		}
	}
	return out
}

// Midpoint is the representative of a merged cluster.
func Midpoint(a, b kdtree.Point) kdtree.Point {
	return kdtree.Point{(a[0] + b[0]) / 2, (a[1] + b[1]) / 2, (a[2] + b[2]) / 2}
}

// Step is one speculative iteration over point p: if p is stale, do
// nothing; if p and its nearest neighbour are mutually nearest, merge
// them; otherwise requeue p. It reports whether it merged.
func Step(tx *engine.Tx, idx kdtree.Index, d *Dendrogram, p kdtree.Point, push func(kdtree.Point)) (bool, error) {
	ok, err := idx.Contains(tx, p)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil // p was merged away by an earlier iteration
	}
	n, err := idx.Nearest(tx, p)
	if err != nil {
		return false, err
	}
	if n.IsNone() {
		return false, nil // single cluster: done
	}
	m, err := idx.Nearest(tx, n)
	if err != nil {
		return false, err
	}
	if m != p {
		// Not reciprocal: someone closer to n exists; try p again later.
		push(p)
		return false, nil
	}
	if _, err := idx.Remove(tx, p); err != nil {
		return false, err
	}
	if _, err := idx.Remove(tx, n); err != nil {
		return false, err
	}
	c := Midpoint(p, n)
	if _, err := idx.Add(tx, c); err != nil {
		return false, err
	}
	tx.OnUndo(d.add(p, n, c))
	push(c)
	return true, nil
}

// Result summarizes a clustering run.
type Result struct {
	Merges int
	Stats  engine.Stats
}

// Run clusters pts speculatively over idx (which must be empty) and
// returns the dendrogram. With n input points it performs exactly n-1
// merges.
func Run(idx kdtree.Index, pts []kdtree.Point, opts engine.Options) (*Dendrogram, Result, error) {
	idx.Seed(pts)
	d := &Dendrogram{}
	wl := engine.NewWorklist(pts...)
	stats, err := engine.Run(wl, opts, func(tx *engine.Tx, p kdtree.Point, wl *engine.Worklist[kdtree.Point]) error {
		_, err := Step(tx, idx, d, p, func(q kdtree.Point) { wl.Push(q) })
		return err
	})
	res := Result{Merges: len(d.Merges()), Stats: stats}
	return d, res, err
}

// Sequential clusters pts with a plain kd-tree (no conflict detection)
// and returns the dendrogram; the reference implementation.
func Sequential(pts []kdtree.Point) *Dendrogram {
	t := kdtree.New()
	for _, p := range pts {
		t.Add(p)
	}
	d := &Dendrogram{}
	queue := append([]kdtree.Point(nil), pts...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if !t.Contains(p) {
			continue
		}
		n := t.Nearest(p)
		if n.IsNone() {
			break
		}
		if t.Nearest(n) != p {
			queue = append(queue, p)
			continue
		}
		t.Remove(p)
		t.Remove(n)
		c := Midpoint(p, n)
		t.Add(c)
		d.add(p, n, c)
		queue = append(queue, c)
	}
	return d
}

// ProfileResult bundles a parallelism profile with the merge count.
type ProfileResult struct {
	parameter.Result
	Merges int
}

// Profile measures the parallelism of clustering pts under the guarded
// index idx (Table 1's kd-ml vs kd-gk rows).
func Profile(idx kdtree.Index, pts []kdtree.Point) (ProfileResult, error) {
	idx.Seed(pts)
	d := &Dendrogram{}
	res, err := parameter.Profile(pts, func(tx *engine.Tx, p kdtree.Point, push func(kdtree.Point)) (bool, error) {
		return Step(tx, idx, d, p, push)
	})
	return ProfileResult{Result: res, Merges: len(d.Merges())}, err
}
