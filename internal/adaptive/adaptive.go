// Package adaptive implements the future-work system sketched at the end
// of the paper's §5: "the ability to rank checkers by permittivity can
// allow an automated system to adaptively and dynamically select from
// these implementations as run-time needs change, given observations of
// parallelism and overhead."
//
// A Ladder is a list of conflict-detector implementations of the same
// ADT, ranked by lattice position (least to most permissive). The
// Controller hill-climbs the ladder: the workload is processed in
// epochs, each epoch's throughput and abort ratio are observed, and the
// controller moves toward the better-performing neighbor, occasionally
// probing unexplored rungs. Switching happens at epoch boundaries — a
// quiescent point with no live transactions — by snapshotting the
// abstract state out of one implementation and seeding the next, which
// is possible precisely because all rungs implement the same abstract
// data type.
package adaptive

import (
	"fmt"
	"time"

	"commlat/internal/adt/intset"
	"commlat/internal/engine"
	"commlat/internal/telemetry"
	"commlat/internal/workload"
)

// Sample is one epoch's observation of a rung.
type Sample struct {
	Rung       int
	Ops        int
	AbortRatio float64
	Throughput float64 // committed operations per second
}

// Controller is the ε-free hill-climbing policy: it keeps the best
// observed throughput per rung and, after each epoch, picks the next
// rung to run — preferring an unexplored neighbor of the current rung,
// otherwise the best-known rung, drifting one step at a time.
type Controller struct {
	rungs   int
	current int
	best    []float64 // best observed throughput per rung; 0 = unexplored
}

// NewController creates a controller over n ranked rungs, starting at
// rung start.
func NewController(n, start int) *Controller {
	if n < 1 || start < 0 || start >= n {
		panic("adaptive: bad controller configuration")
	}
	return &Controller{rungs: n, current: start, best: make([]float64, n)}
}

// Current returns the rung the next epoch should run on.
func (c *Controller) Current() int { return c.current }

// Observe records an epoch's sample and decides the next rung.
func (c *Controller) Observe(s Sample) int {
	if s.Rung >= 0 && s.Rung < c.rungs && s.Throughput > c.best[s.Rung] {
		c.best[s.Rung] = s.Throughput
	}
	// Probe an unexplored neighbor first: without data the ladder cannot
	// be ranked.
	for _, nb := range []int{c.current + 1, c.current - 1} {
		if nb >= 0 && nb < c.rungs && c.best[nb] == 0 {
			c.current = nb
			return c.current
		}
	}
	// Otherwise drift one step toward the best-known rung.
	bestRung := c.current
	for r := 0; r < c.rungs; r++ {
		if c.best[r] > c.best[bestRung] {
			bestRung = r
		}
	}
	switch {
	case bestRung > c.current:
		c.current++
	case bestRung < c.current:
		c.current--
	}
	return c.current
}

// Rung is one implementation in a ladder: a constructor that builds the
// detector-guarded set pre-seeded with the given elements.
type Rung struct {
	Name string
	Make func(seed []int64) intset.Set
}

// DefaultLadder is the set's lattice ladder in permissiveness order:
// global lock (⊥), exclusive element locks, read/write element locks
// (figure 3), liberal guarded locks (figure 2 via the footnote-6
// extension), forward gatekeeper (figure 2), the gatekeeper behind the
// cascade's signature filter and optimistic index — same verdicts as
// the gatekeeper rung, cheaper admissions under low contention — and
// the cascade behind the affinity router, which partitions admission
// state by key so disjoint workers stop sharing cache lines. The last
// three rungs share one verdict relation; they differ only in admission
// cost, which is exactly what the controller's throughput samples rank.
func DefaultLadder() []Rung {
	seed := func(s intset.Set, elems []int64) intset.Set {
		tx := engine.NewTx()
		for _, x := range elems {
			if _, err := s.Add(tx, x); err != nil {
				panic(fmt.Sprintf("adaptive: seeding conflicted: %v", err))
			}
		}
		tx.Commit()
		return s
	}
	return []Rung{
		{Name: "global", Make: func(e []int64) intset.Set { return seed(intset.NewGlobalLock(intset.NewHashRep()), e) }},
		{Name: "exclusive", Make: func(e []int64) intset.Set { return seed(intset.NewExclusiveLocked(intset.NewHashRep()), e) }},
		{Name: "rw", Make: func(e []int64) intset.Set { return seed(intset.NewRWLocked(intset.NewHashRep()), e) }},
		{Name: "liberal", Make: func(e []int64) intset.Set { return seed(intset.NewLiberalLocked(intset.NewHashRep()), e) }},
		{Name: "gatekeeper", Make: func(e []int64) intset.Set { return seed(intset.NewGatekept(intset.NewHashRep()), e) }},
		{Name: "cascade", Make: func(e []int64) intset.Set { return seed(intset.NewCascaded(intset.NewHashRep()), e) }},
		{Name: "cascade-sharded", Make: func(e []int64) intset.Set {
			return seed(intset.NewShardedCascaded(func() intset.Rep { return intset.NewHashRep() }, 0), e)
		}},
	}
}

// ShardedRung builds the cascade-sharded rung with an explicit shard
// count (0: gatekeeper.DefaultShards), for callers overriding the
// default rung — e.g. commlat adaptive -shards.
func ShardedRung(shards int) Rung {
	return Rung{Name: "cascade-sharded", Make: func(e []int64) intset.Set {
		s := intset.NewShardedCascaded(func() intset.Rep { return intset.NewHashRep() }, shards)
		tx := engine.NewTx()
		for _, x := range e {
			if _, err := s.Add(tx, x); err != nil {
				panic(fmt.Sprintf("adaptive: seeding conflicted: %v", err))
			}
		}
		tx.Commit()
		return s
	}}
}

// Trace is the record of an adaptive run.
type Trace struct {
	Samples []Sample
	Final   intset.Set
	// Switches counts rung changes.
	Switches int
}

// Run processes ops in epochs of epochSize with an overlap window of
// `window` live transactions (as in the Table 2 harness), starting on
// rung start, migrating the set's contents whenever the controller
// switches rungs.
func Run(ladder []Rung, ops []workload.SetOp, epochSize, window, start int) (*Trace, error) {
	if epochSize <= 0 || window <= 0 {
		return nil, fmt.Errorf("adaptive: bad epoch %d / window %d", epochSize, window)
	}
	ctl := NewController(len(ladder), start)
	cur := ladder[ctl.Current()].Make(nil)
	trace := &Trace{}
	// One telemetry detector per adaptive run, with the rung names as its
	// vocabulary: rung transitions are counted as (from, to) pairs and
	// emitted as decision events.
	names := make([]string, len(ladder))
	for i, r := range ladder {
		names[i] = r.Name
	}
	tele := telemetry.Register("adaptive", "ladder", names)
	epoch := 0
	for lo := 0; lo < len(ops); lo += epochSize {
		hi := lo + epochSize
		if hi > len(ops) {
			hi = len(ops)
		}
		rung := ctl.Current()
		stats, dur, err := runEpoch(cur, ops[lo:hi], window)
		if err != nil {
			return trace, err
		}
		s := Sample{
			Rung:       rung,
			Ops:        hi - lo,
			AbortRatio: stats.AbortRatio(),
			Throughput: float64(hi-lo) / dur.Seconds(),
		}
		trace.Samples = append(trace.Samples, s)
		tele.IncInvocation()
		next := ctl.Observe(s)
		reason := telemetry.AuditHold
		switch {
		case next > rung:
			reason = telemetry.AuditClimb
		case next < rung:
			reason = telemetry.AuditBackoff
		}
		telemetry.RecordAudit(telemetry.AuditEntry{
			Controller: "ladder", Det: tele.ID(), Window: s.Ops,
			ConflictRate: s.AbortRatio,
			FromRung:     rung, ToRung: next,
			Moved: next != rung, Reason: reason,
		})
		if next != rung && hi < len(ops) {
			// Quiescent point: migrate the abstract state to the new rung.
			cur = ladder[next].Make(cur.Snapshot())
			trace.Switches++
			tele.Check(uint16(rung), uint16(next))
			if telemetry.TraceEnabled() {
				telemetry.EmitDecision(tele.ID(), int64(epoch), uint16(rung), uint16(next))
			}
		}
		epoch++
	}
	trace.Final = cur
	return trace, nil
}

// runEpoch mirrors bench.RunSetMicro's overlap-window execution.
func runEpoch(s intset.Set, ops []workload.SetOp, window int) (engine.Stats, time.Duration, error) {
	var aborts uint64
	start := time.Now()
	open := make([]*engine.Tx, 0, window)
	commitOldest := func() {
		open[0].Commit()
		open = open[1:]
	}
	for _, op := range ops {
		for {
			tx := engine.NewTx()
			var err error
			if op.Add {
				_, err = s.Add(tx, op.X)
			} else {
				_, err = s.Contains(tx, op.X)
			}
			if err == nil {
				open = append(open, tx)
				if len(open) == window {
					commitOldest()
				}
				break
			}
			if !engine.IsConflict(err) {
				tx.Abort()
				return engine.Stats{}, 0, err
			}
			tx.Abort()
			aborts++
			if len(open) > 0 {
				commitOldest()
			}
		}
	}
	for _, tx := range open {
		tx.Commit()
	}
	d := time.Since(start)
	return engine.Stats{Committed: uint64(len(ops)), Aborts: aborts, Elapsed: d}, d, nil
}
