package adaptive

import (
	"runtime"
	"sync"
	"sync/atomic"

	"commlat/internal/telemetry"
)

// ShardRungs builds the shard-count ladder the ShardController climbs:
// {1, P/2, P, 2P} for P = GOMAXPROCS, deduplicated and rounded to
// powers of two (so P=2 yields {1, 2, 4}). One shard is the serial
// cascade; past 2P the extra shards only dilute the admission filters
// without adding parallelism.
func ShardRungs() []int {
	p := runtime.GOMAXPROCS(0)
	pow2 := func(n int) int {
		if n < 1 {
			return 1
		}
		k := 1
		for k < n {
			k <<= 1
		}
		return k
	}
	var rungs []int
	for _, n := range []int{1, pow2(p / 2), pow2(p), pow2(2 * p)} {
		if len(rungs) == 0 || rungs[len(rungs)-1] < n {
			rungs = append(rungs, n)
		}
	}
	return rungs
}

// ShardController picks the shard count for a sharded detector
// (gatekeeper.ShardedCascade) from observed contention, the
// BatchController's hill-climb over a different axis: sharding is
// speculation that the workload's keys partition cleanly, and the right
// shard count depends on how often invocations conflict or cross
// shards. While both the conflict rate and the crossing rate stay low
// the controller climbs toward more shards (shrinking each shard's
// admission state and contention domain); when either rate grows it
// backs off — conflicts mean contended keys whose retries only get
// costlier when split across shard tickets, and crossings mean
// multi-shard rendezvous admissions whose cost scales with the shard
// count.
//
// Unlike the batch size, a shard count cannot change under live
// invocations — the router's state is built per count — so Shards is a
// recommendation read at construction or epoch boundaries (quiescent
// points), exactly like the detector ladder's rung switches.
type ShardController struct {
	rungs []int
	rung  atomic.Int32

	mu        sync.Mutex
	local     int
	crossings int
	conflicts int

	// window is how many observed invocations separate rung decisions;
	// lo/hi are the rate thresholds with the same hysteresis dead band
	// as the BatchController.
	window int
	lo, hi float64
}

// NewShardController returns a controller over ShardRungs() starting at
// the rung whose count is closest to start (start <= 0 picks the
// GOMAXPROCS rung), with the default window (512 invocations) and
// thresholds (climb below 1%, back off above 5%).
func NewShardController(start int) *ShardController {
	c := &ShardController{rungs: ShardRungs(), window: 512, lo: 0.01, hi: 0.05}
	if start <= 0 {
		start = runtime.GOMAXPROCS(0)
	}
	best := 0
	for i, n := range c.rungs {
		if abs(n-start) < abs(c.rungs[best]-start) {
			best = i
		}
	}
	c.rung.Store(int32(best))
	return c
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// Shards returns the recommended shard count for the next construction
// or epoch.
func (c *ShardController) Shards() int { return c.rungs[c.rung.Load()] }

// Rungs returns the ladder (for reports).
func (c *ShardController) Rungs() []int { return c.rungs }

// Observe accumulates one epoch's routing outcome — shard-local
// admissions, cross-shard rendezvous admissions, and conflicts — and,
// once a full window of invocations has been seen, moves the rung one
// step in the direction the rates indicate.
func (c *ShardController) Observe(local, crossings, conflicts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.local += local
	c.crossings += crossings
	c.conflicts += conflicts
	total := c.local + c.crossings + c.conflicts
	if total < c.window {
		return
	}
	conflictRate := float64(c.conflicts) / float64(total)
	crossingRate := float64(c.crossings) / float64(total)
	c.local, c.crossings, c.conflicts = 0, 0, 0
	r := c.rung.Load()
	next, reason := r, telemetry.AuditHold
	switch {
	case conflictRate > c.hi || crossingRate > c.hi:
		if r > 0 {
			next, reason = r-1, telemetry.AuditBackoff
		} else {
			reason = telemetry.AuditPinned
		}
	case conflictRate < c.lo && crossingRate < c.lo:
		if int(r) < len(c.rungs)-1 {
			next, reason = r+1, telemetry.AuditClimb
		} else {
			reason = telemetry.AuditPinned
		}
	}
	if next != r {
		c.rung.Store(next)
	}
	telemetry.RecordAudit(telemetry.AuditEntry{
		Controller: "shard", Window: total,
		ConflictRate: conflictRate, CrossRate: crossingRate,
		Lo: c.lo, Hi: c.hi,
		FromRung: c.rungs[r], ToRung: c.rungs[next],
		Moved: next != r, Reason: reason,
	})
}
