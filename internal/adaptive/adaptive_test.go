package adaptive

import (
	"fmt"
	"testing"

	"commlat/internal/workload"
)

func TestControllerClimbsToBest(t *testing.T) {
	// Rung throughputs: 10, 20, 40, 30 — the controller must end up
	// steady on rung 2.
	tp := []float64{10, 20, 40, 30}
	c := NewController(4, 0)
	var visits []int
	cur := c.Current()
	for i := 0; i < 20; i++ {
		visits = append(visits, cur)
		cur = c.Observe(Sample{Rung: cur, Throughput: tp[cur]})
	}
	// The tail must be pinned to rung 2.
	for _, r := range visits[10:] {
		if r != 2 {
			t.Fatalf("controller did not settle on rung 2: visits=%v", visits)
		}
	}
	// All rungs must have been explored at least once.
	seen := map[int]bool{}
	for _, r := range visits {
		seen[r] = true
	}
	for r := 0; r < 4; r++ {
		if !seen[r] {
			t.Errorf("rung %d never probed (visits=%v)", r, visits)
		}
	}
}

func TestControllerDriftsDownWhenLowIsBest(t *testing.T) {
	tp := []float64{50, 20, 10, 5}
	c := NewController(4, 3)
	cur := c.Current()
	for i := 0; i < 20; i++ {
		cur = c.Observe(Sample{Rung: cur, Throughput: tp[cur]})
	}
	if cur != 0 {
		t.Errorf("controller settled on rung %d, want 0", cur)
	}
}

func TestControllerSingleRung(t *testing.T) {
	c := NewController(1, 0)
	if next := c.Observe(Sample{Rung: 0, Throughput: 5}); next != 0 {
		t.Errorf("single rung must stay put, got %d", next)
	}
}

func TestControllerBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewController(2, 5)
}

// TestRunMigratesAndPreservesContents is the integration test: a real
// adaptive run over the default ladder must produce exactly the set a
// single fixed implementation would, regardless of how many times it
// switched rungs.
func TestRunMigratesAndPreservesContents(t *testing.T) {
	ops := workload.SetOpsClasses(6000, 40, 3)
	trace, err := Run(DefaultLadder(), ops, 500, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Samples) != 12 {
		t.Fatalf("epochs = %d, want 12", len(trace.Samples))
	}
	// Reference: contents after applying all adds sequentially.
	want := map[int64]bool{}
	for _, op := range ops {
		if op.Add {
			want[op.X] = true
		}
	}
	got := map[int64]bool{}
	for _, x := range trace.Final.Snapshot() {
		got[x] = true
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("final contents diverged: got %d elements, want %d", len(got), len(want))
	}
	// The run must actually have explored: at least one switch.
	if trace.Switches == 0 {
		t.Error("adaptive run never switched rungs")
	}
	for _, s := range trace.Samples {
		if s.Throughput <= 0 {
			t.Errorf("non-positive throughput in %+v", s)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(DefaultLadder(), nil, 0, 4, 0); err == nil {
		t.Error("epoch size 0 should error")
	}
	if _, err := Run(DefaultLadder(), nil, 10, 0, 0); err == nil {
		t.Error("window 0 should error")
	}
}

func TestDefaultLadderSeeds(t *testing.T) {
	for _, rung := range DefaultLadder() {
		s := rung.Make([]int64{1, 2, 3})
		snap := s.Snapshot()
		if len(snap) != 3 {
			t.Errorf("%s: seeded %d elements, want 3", rung.Name, len(snap))
		}
	}
}
