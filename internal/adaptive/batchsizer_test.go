package adaptive

import (
	"sync"
	"testing"
)

func TestBatchControllerClimbsWhenClean(t *testing.T) {
	c := NewBatchController(0)
	if got := c.Size(); got != BatchRungs[0] {
		t.Fatalf("start Size = %d, want %d", got, BatchRungs[0])
	}
	// Conflict-free windows climb one rung at a time to the top.
	for step := 1; step < len(BatchRungs); step++ {
		c.Observe(c.window, 0)
		if got := c.Size(); got != BatchRungs[step] {
			t.Fatalf("after %d clean windows Size = %d, want %d", step, got, BatchRungs[step])
		}
	}
	// At the top rung a clean window holds steady.
	c.Observe(c.window, 0)
	if got := c.Size(); got != BatchRungs[len(BatchRungs)-1] {
		t.Fatalf("top rung did not hold: Size = %d", got)
	}
}

func TestBatchControllerBacksOffUnderConflicts(t *testing.T) {
	c := NewBatchController(len(BatchRungs) - 1)
	// 10% conflicts is above the back-off threshold: descend one rung
	// per window all the way to serial.
	for step := len(BatchRungs) - 2; step >= 0; step-- {
		c.Observe(c.window-c.window/10, c.window/10)
		if got := c.Size(); got != BatchRungs[step] {
			t.Fatalf("descent stalled: Size = %d, want %d", got, BatchRungs[step])
		}
	}
	c.Observe(c.window-c.window/10, c.window/10)
	if got := c.Size(); got != BatchRungs[0] {
		t.Fatalf("bottom rung did not hold: Size = %d", got)
	}
}

func TestBatchControllerDeadBandHolds(t *testing.T) {
	c := NewBatchController(1)
	// A 3% conflict rate sits between the thresholds — the rung must
	// not move in either direction, however many windows pass.
	for i := 0; i < 8; i++ {
		c.Observe(c.window*97/100, c.window*3/100+1)
		if got := c.Size(); got != BatchRungs[1] {
			t.Fatalf("dead band moved the rung: Size = %d", got)
		}
	}
}

func TestBatchControllerPartialWindowsAccumulate(t *testing.T) {
	c := NewBatchController(0)
	// Observations smaller than the window accumulate without deciding;
	// the decision fires when the window fills across calls.
	for i := 0; i < 3; i++ {
		c.Observe(c.window/4, 0)
		if got := c.Size(); got != BatchRungs[0] {
			t.Fatalf("decided before the window filled: Size = %d", got)
		}
	}
	c.Observe(c.window/4, 0)
	if got := c.Size(); got != BatchRungs[1] {
		t.Fatalf("full window did not decide: Size = %d", got)
	}
}

func TestBatchControllerConcurrent(t *testing.T) {
	c := NewBatchController(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = c.Size()
				c.Observe(7, 1)
			}
		}()
	}
	wg.Wait()
	// 12.5% conflicts throughout: whatever interleaving occurred, the
	// controller must have stayed at (or returned to) the serial rung.
	c.Observe(c.window, c.window/5)
	if got := c.Size(); got != BatchRungs[0] {
		t.Errorf("Size = %d after sustained conflicts, want %d", got, BatchRungs[0])
	}
}

func TestBatchControllerBadStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range start rung did not panic")
		}
	}()
	NewBatchController(len(BatchRungs))
}
