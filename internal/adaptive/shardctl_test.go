package adaptive

import (
	"runtime"
	"testing"
)

func TestShardRungsShape(t *testing.T) {
	rungs := ShardRungs()
	if len(rungs) == 0 || rungs[0] != 1 {
		t.Fatalf("ShardRungs() = %v, want a ladder starting at 1", rungs)
	}
	for i := 1; i < len(rungs); i++ {
		if rungs[i] <= rungs[i-1] {
			t.Fatalf("ShardRungs() = %v not strictly increasing", rungs)
		}
		if rungs[i]&(rungs[i]-1) != 0 {
			t.Fatalf("rung %d not a power of two in %v", rungs[i], rungs)
		}
	}
	p := runtime.GOMAXPROCS(0)
	found := false
	for _, n := range rungs {
		if n >= p {
			found = true
		}
	}
	if !found {
		t.Fatalf("ShardRungs() = %v has no rung covering GOMAXPROCS=%d", rungs, p)
	}
}

// TestShardControllerClimbsAndBacksOff drives the controller with
// synthetic windows: all-local low-conflict traffic climbs to the top
// rung, crossing-heavy traffic walks it back down, and conflict-heavy
// traffic keeps it down.
func TestShardControllerClimbsAndBacksOff(t *testing.T) {
	c := NewShardController(1) // start at the bottom
	if c.Shards() != c.Rungs()[0] {
		t.Fatalf("start Shards() = %d, want bottom rung %d", c.Shards(), c.Rungs()[0])
	}
	top := c.Rungs()[len(c.Rungs())-1]
	for i := 0; i < 4*len(c.Rungs()); i++ {
		c.Observe(600, 0, 0) // one full clean window per call
	}
	if c.Shards() != top {
		t.Fatalf("clean traffic reached %d shards, want top rung %d", c.Shards(), top)
	}
	c.Observe(300, 300, 0) // 50% crossing rate: back off one rung
	if c.Shards() == top && len(c.Rungs()) > 1 {
		t.Fatalf("crossing-heavy window did not back off from %d", top)
	}
	for i := 0; i < 4*len(c.Rungs()); i++ {
		c.Observe(500, 0, 100) // 17% conflict rate: keep backing off
	}
	if c.Shards() != c.Rungs()[0] {
		t.Fatalf("conflict-heavy traffic settled at %d shards, want bottom rung %d", c.Shards(), c.Rungs()[0])
	}
	// The dead band holds the rung in place.
	mid := c.Shards()
	c.Observe(570, 18, 12) // 3% crossing, 2% conflict: inside hysteresis
	if c.Shards() != mid {
		t.Fatalf("dead-band window moved the rung %d -> %d", mid, c.Shards())
	}
}

func TestShardControllerStartSnapsToRung(t *testing.T) {
	c := NewShardController(3)
	got := c.Shards()
	ok := false
	for _, n := range c.Rungs() {
		if n == got {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("Shards() = %d not on the ladder %v", got, c.Rungs())
	}
}
