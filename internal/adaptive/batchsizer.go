package adaptive

import (
	"sync"
	"sync/atomic"

	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// BatchRungs is the batch-size ladder the BatchController climbs. The
// rungs are geometric because the marginal benefit of batching is: each
// doubling halves the remaining per-batch overhead share, so linear
// steps would waste epochs distinguishing near-identical sizes.
var BatchRungs = [...]int{1, 8, 32, 128}

// BatchController adapts the executor's batch size to the observed
// conflict rate, the same hill-climbing idea as the detector ladder but
// over a different axis: a batch is speculation that its members are
// mutually disjoint, and the right amount of speculation depends on the
// workload. While conflicts are rare the controller climbs toward
// larger batches (amortizing admission and commit synchronization);
// when conflicts eat into the batched work it backs off toward the
// serial rung, where a conflict wastes at most one invocation.
//
// It implements engine.BatchSizer and is safe for concurrent use: all
// workers of a run share one controller, observations accumulate under
// a mutex, and the published rung is read without blocking.
type BatchController struct {
	rung atomic.Int32 // index into BatchRungs, read by Size

	mu        sync.Mutex
	committed int
	conflicts int

	// window is how many observed items separate rung decisions; lo and
	// hi are the conflict-rate thresholds for climbing and backing off.
	// The dead band between them is the hysteresis that keeps the
	// controller from oscillating on a workload near one threshold.
	window int
	lo, hi float64
}

var _ engine.BatchSizer = (*BatchController)(nil)

// NewBatchController returns a controller starting at batch size
// BatchRungs[start] with the default window (256 items) and thresholds
// (climb below 1% conflicts, back off above 5%).
func NewBatchController(start int) *BatchController {
	if start < 0 || start >= len(BatchRungs) {
		panic("adaptive: batch rung out of range")
	}
	c := &BatchController{window: 256, lo: 0.01, hi: 0.05}
	c.rung.Store(int32(start))
	return c
}

// Size returns the batch size for the next batch.
func (c *BatchController) Size() int { return BatchRungs[c.rung.Load()] }

// Observe accumulates one finished batch's outcome and, once a full
// window of items has been seen, moves the rung one step in the
// direction the conflict rate indicates.
func (c *BatchController) Observe(committed, conflicts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.committed += committed
	c.conflicts += conflicts
	total := c.committed + c.conflicts
	if total < c.window {
		return
	}
	rate := float64(c.conflicts) / float64(total)
	c.committed, c.conflicts = 0, 0
	r := c.rung.Load()
	next, reason := r, telemetry.AuditHold
	switch {
	case rate < c.lo && int(r) < len(BatchRungs)-1:
		next, reason = r+1, telemetry.AuditClimb
	case rate > c.hi && r > 0:
		next, reason = r-1, telemetry.AuditBackoff
	case rate < c.lo || rate > c.hi:
		reason = telemetry.AuditPinned
	}
	if next != r {
		c.rung.Store(next)
	}
	telemetry.RecordAudit(telemetry.AuditEntry{
		Controller: "batch", Window: total,
		ConflictRate: rate, Lo: c.lo, Hi: c.hi,
		FromRung: BatchRungs[r], ToRung: BatchRungs[next],
		Moved: next != r, Reason: reason,
	})
}
