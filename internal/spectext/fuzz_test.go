package spectext

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseSpec feeds arbitrary text through the spec parser, seeded
// with the shipped example specs. Parse must never panic; when it
// accepts an input, the round trip Parse → Format → Parse must also
// succeed and reach a fixed point (formatting the reparsed spec yields
// the same text), so Format output is always valid parser input.
func FuzzParseSpec(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.spec"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no example specs found to seed the corpus")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("")
	f.Add("spec s\nmethod m(x) bool\npair m ~ m: true\n")
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		text := Format(spec)
		spec2, err := Parse(text)
		if err != nil {
			t.Fatalf("Format output rejected by Parse: %v\ninput:\n%s\nformatted:\n%s", err, src, text)
		}
		if text2 := Format(spec2); text2 != text {
			t.Fatalf("Format not idempotent\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
	})
}
