package spectext

import (
	"fmt"
	"strconv"
	"strings"

	"commlat/internal/core"
)

// Parse reads a complete specification file: an `adt` declaration,
// `method` declarations, optional `pure` declarations, optional
// `oriented m1 ~ m2` declarations (marking a pair whose condition is
// intentionally orientation-sensitive, see Spec.SetOriented), and one
// condition line per (ordered) method pair. A second condition line for
// the same ordered pair is an error — silent last-write-wins made a
// stale edit win over the line the author thought was in force.
func Parse(src string) (*core.Spec, error) {
	var sig *core.ADTSig
	var pure []string
	type pairLine struct {
		m1, m2 string
		toks   []token
		line   int
	}
	var pairs []pairLine
	type orientLine struct {
		m1, m2 string
		line   int
	}
	var orients []orientLine

	for lineno, raw := range strings.Split(src, "\n") {
		toks, err := lexLine(raw, lineno+1)
		if err != nil {
			return nil, err
		}
		if toks[0].kind == tokEOF {
			continue // blank or comment-only line
		}
		head := toks[0]
		switch {
		case head.kind == tokIdent && head.text == "adt":
			if sig != nil {
				return nil, fmt.Errorf("line %d: duplicate adt declaration", lineno+1)
			}
			if len(toks) < 3 || toks[1].kind != tokIdent {
				return nil, fmt.Errorf("line %d: usage: adt <name>", lineno+1)
			}
			sig = &core.ADTSig{Name: toks[1].text}
		case head.kind == tokIdent && head.text == "method":
			if sig == nil {
				return nil, fmt.Errorf("line %d: method before adt", lineno+1)
			}
			ms, err := parseMethod(toks[1:], lineno+1)
			if err != nil {
				return nil, err
			}
			sig.Methods = append(sig.Methods, ms)
		case head.kind == tokIdent && head.text == "oriented":
			if len(toks) < 5 || toks[1].kind != tokIdent || toks[2].text != "~" ||
				toks[3].kind != tokIdent || toks[4].kind != tokEOF {
				return nil, fmt.Errorf("line %d: usage: oriented <m1> ~ <m2>", lineno+1)
			}
			orients = append(orients, orientLine{m1: toks[1].text, m2: toks[3].text, line: lineno + 1})
		case head.kind == tokIdent && head.text == "pure":
			for _, tk := range toks[1:] {
				if tk.kind == tokIdent {
					pure = append(pure, tk.text)
				} else if tk.kind != tokEOF && tk.text != "," {
					return nil, fmt.Errorf("line %d: usage: pure <fn>[, <fn>...]", lineno+1)
				}
			}
		default:
			// m1 ~ m2 : cond
			if len(toks) < 5 || toks[0].kind != tokIdent || toks[1].text != "~" ||
				toks[2].kind != tokIdent || toks[3].text != ":" {
				return nil, fmt.Errorf("line %d: expected `m1 ~ m2: condition`", lineno+1)
			}
			pairs = append(pairs, pairLine{m1: toks[0].text, m2: toks[2].text, toks: toks[4:], line: lineno + 1})
		}
	}
	if sig == nil {
		return nil, fmt.Errorf("spectext: missing adt declaration")
	}
	spec := core.NewSpec(sig)
	spec.DeclarePure(pure...)
	firstAt := map[[2]string]int{}
	for _, pl := range pairs {
		if _, ok := sig.Method(pl.m1); !ok {
			return nil, fmt.Errorf("line %d: unknown method %q", pl.line, pl.m1)
		}
		if _, ok := sig.Method(pl.m2); !ok {
			return nil, fmt.Errorf("line %d: unknown method %q", pl.line, pl.m2)
		}
		if first, dup := firstAt[[2]string{pl.m1, pl.m2}]; dup {
			return nil, fmt.Errorf("line %d: duplicate condition for %s ~ %s (first defined at line %d)", pl.line, pl.m1, pl.m2, first)
		}
		firstAt[[2]string{pl.m1, pl.m2}] = pl.line
		p := &parser{toks: pl.toks, line: pl.line, sig: sig, m1: pl.m1, m2: pl.m2}
		expr, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if tk := p.peek(); tk.kind != tokEOF {
			return nil, fmt.Errorf("line %d: trailing input %q", pl.line, tk.text)
		}
		cond, err := exprToCond(expr)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", pl.line, err)
		}
		spec.Set(pl.m1, pl.m2, cond)
	}
	for _, o := range orients {
		if _, ok := sig.Method(o.m1); !ok {
			return nil, fmt.Errorf("line %d: unknown method %q", o.line, o.m1)
		}
		if _, ok := sig.Method(o.m2); !ok {
			return nil, fmt.Errorf("line %d: unknown method %q", o.line, o.m2)
		}
		spec.SetOriented(o.m1, o.m2)
	}
	return spec, nil
}

func parseMethod(toks []token, line int) (core.MethodSig, error) {
	var ms core.MethodSig
	if len(toks) < 3 || toks[0].kind != tokIdent || toks[1].text != "(" {
		return ms, fmt.Errorf("line %d: usage: method <name>(<params>) [ret]", line)
	}
	ms.Name = toks[0].text
	i := 2
	for toks[i].text != ")" {
		if toks[i].kind == tokIdent {
			ms.Params = append(ms.Params, toks[i].text)
			i++
			if toks[i].text == "," {
				i++
			}
		} else {
			return ms, fmt.Errorf("line %d: bad parameter list", line)
		}
	}
	i++
	if toks[i].kind == tokIdent && toks[i].text == "ret" {
		ms.HasRet = true
		i++
	}
	if toks[i].kind != tokEOF {
		return ms, fmt.Errorf("line %d: trailing input after method declaration", line)
	}
	return ms, nil
}

// --- expression parsing ----------------------------------------------------
//
// A unified precedence-climbing parser over a single expression grammar;
// the result is split into Cond vs Term afterwards:
//
//	1: ||        6: + -
//	2: &&        7: * /
//	3: ! (unary)
//	4: = != < > <= >=
type expr struct {
	// op: "" for leaf; otherwise the operator ("||", "&&", "!", "=", ...).
	op   string
	l, r *expr
	// leaf payloads
	term core.Term // non-nil for term leaves
	lit  *bool     // boolean literal (true/false), context-dependent
}

type parser struct {
	toks   []token
	i      int
	line   int
	sig    *core.ADTSig
	m1, m2 string
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(text string) error {
	if t := p.next(); t.text != text {
		return fmt.Errorf("line %d: expected %q, got %q", p.line, text, t.text)
	}
	return nil
}

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"=": 4, "!=": 4, "<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 6, "-": 6, "*": 7, "/": 7,
}

func (p *parser) parseExpr(minPrec int) (*expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek().text
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &expr{op: op, l: lhs, r: rhs}
	}
}

func (p *parser) parseUnary() (*expr, error) {
	if p.peek().text == "!" {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr{op: "!", l: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*expr, error) {
	t := p.next()
	switch {
	case t.text == "(":
		inner, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad number %q", p.line, t.text)
			}
			return &expr{term: core.Lit(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q", p.line, t.text)
		}
		return &expr{term: core.Lit(n)}, nil
	case t.kind == tokIdent:
		switch t.text {
		case "true", "false":
			b := t.text == "true"
			return &expr{lit: &b}, nil
		case "r1":
			return &expr{term: core.Ret1()}, nil
		case "r2":
			return &expr{term: core.Ret2()}, nil
		case "v1", "v2":
			if err := p.expect("."); err != nil {
				return nil, err
			}
			name := p.next()
			if name.kind != tokIdent {
				return nil, fmt.Errorf("line %d: expected parameter after %s.", p.line, t.text)
			}
			side, method := core.First, p.m1
			if t.text == "v2" {
				side, method = core.Second, p.m2
			}
			idx, err := p.paramIndex(method, name.text)
			if err != nil {
				return nil, err
			}
			return &expr{term: core.ArgTerm{Side: side, Index: idx}}, nil
		}
		// Function application: fn@s1(...) / fn@s2(...).
		if p.peek().text == "@" {
			p.next()
			st := p.next()
			var side core.Side
			switch st.text {
			case "s1":
				side = core.First
			case "s2":
				side = core.Second
			default:
				return nil, fmt.Errorf("line %d: expected s1 or s2 after @, got %q", p.line, st.text)
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var args []core.Term
			for p.peek().text != ")" {
				a, err := p.parseExpr(5) // arithmetic and below
				if err != nil {
					return nil, err
				}
				at, err := exprToTerm(a)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", p.line, err)
				}
				args = append(args, at)
				if p.peek().text == "," {
					p.next()
				}
			}
			p.next() // ")"
			return &expr{term: core.FnTerm{Fn: t.text, State: side, Args: args}}, nil
		}
		return nil, fmt.Errorf("line %d: unexpected identifier %q (terms are v1.<p>, v2.<p>, r1, r2, literals, fn@s1(...))", p.line, t.text)
	default:
		return nil, fmt.Errorf("line %d: unexpected token %q", p.line, t.text)
	}
}

func (p *parser) paramIndex(method, param string) (int, error) {
	ms, _ := p.sig.Method(method)
	for i, name := range ms.Params {
		if name == param {
			return i, nil
		}
	}
	return 0, fmt.Errorf("line %d: method %s has no parameter %q", p.line, method, param)
}

// --- expr → Cond / Term -----------------------------------------------------

var cmpOps = map[string]core.CmpOp{
	"=": core.CmpEq, "!=": core.CmpNe,
	"<": core.CmpLt, ">": core.CmpGt, "<=": core.CmpLe, ">=": core.CmpGe,
}

func exprToCond(e *expr) (core.Cond, error) {
	switch e.op {
	case "||":
		l, err := exprToCond(e.l)
		if err != nil {
			return nil, err
		}
		r, err := exprToCond(e.r)
		if err != nil {
			return nil, err
		}
		return core.Or(l, r), nil
	case "&&":
		l, err := exprToCond(e.l)
		if err != nil {
			return nil, err
		}
		r, err := exprToCond(e.r)
		if err != nil {
			return nil, err
		}
		return core.And(l, r), nil
	case "!":
		l, err := exprToCond(e.l)
		if err != nil {
			return nil, err
		}
		return core.Not(l), nil
	case "":
		if e.lit != nil {
			if *e.lit {
				return core.True(), nil
			}
			return core.False(), nil
		}
		return nil, fmt.Errorf("a term is not a condition (compare it with = or !=)")
	default:
		if op, ok := cmpOps[e.op]; ok {
			l, err := exprToTerm(e.l)
			if err != nil {
				return nil, err
			}
			r, err := exprToTerm(e.r)
			if err != nil {
				return nil, err
			}
			return core.CmpCond{Op: op, L: l, R: r}, nil
		}
		// Arithmetic at condition level is a type error.
		return nil, fmt.Errorf("arithmetic expression used as a condition")
	}
}

var arithOps = map[string]core.ArithOp{
	"+": core.OpAdd, "-": core.OpSub, "*": core.OpMul, "/": core.OpDiv,
}

func exprToTerm(e *expr) (core.Term, error) {
	switch e.op {
	case "":
		if e.term != nil {
			return e.term, nil
		}
		// Boolean literal in term position (e.g. r1 = false).
		return core.Lit(*e.lit), nil
	default:
		if op, ok := arithOps[e.op]; ok {
			l, err := exprToTerm(e.l)
			if err != nil {
				return nil, err
			}
			r, err := exprToTerm(e.r)
			if err != nil {
				return nil, err
			}
			return core.ArithTerm{Op: op, L: l, R: r}, nil
		}
		return nil, fmt.Errorf("boolean expression used as a term")
	}
}
