package spectext

import (
	"fmt"
	"sort"
	"strings"

	"commlat/internal/core"
)

// Format renders a specification in the package's concrete syntax; the
// output parses back to an equivalent specification (Parse ∘ Format is
// the identity up to condition simplification).
func Format(spec *core.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "adt %s\n", spec.Sig.Name)
	for _, m := range spec.Sig.Methods {
		fmt.Fprintf(&b, "method %s(%s)", m.Name, strings.Join(m.Params, ", "))
		if m.HasRet {
			b.WriteString(" ret")
		}
		b.WriteByte('\n')
	}
	if len(spec.Pure) > 0 {
		fns := make([]string, 0, len(spec.Pure))
		for f := range spec.Pure {
			fns = append(fns, f)
		}
		sort.Strings(fns)
		fmt.Fprintf(&b, "pure %s\n", strings.Join(fns, ", "))
	}
	for _, p := range spec.OrientedPairs() {
		fmt.Fprintf(&b, "oriented %s ~ %s\n", p[0], p[1])
	}
	b.WriteByte('\n')
	for _, p := range spec.Pairs() {
		m1, m2 := p[0], p[1]
		fmt.Fprintf(&b, "%s ~ %s: %s\n", m1, m2, formatCond(spec.Cond(m1, m2), spec.Sig, m1, m2))
		if m1 != m2 {
			// Emit the mirrored direction only when it is a genuine
			// directed override (not the mechanical role swap).
			mirror := spec.Cond(m2, m1)
			if !core.CondEqual(mirror, core.SwapSides(spec.Cond(m1, m2))) {
				fmt.Fprintf(&b, "%s ~ %s: %s\n", m2, m1, formatCond(mirror, spec.Sig, m2, m1))
			}
		}
	}
	return b.String()
}

func formatCond(c core.Cond, sig *core.ADTSig, m1, m2 string) string {
	switch x := c.(type) {
	case core.TrueCond:
		return "true"
	case core.FalseCond:
		return "false"
	case core.NotCond:
		return "!(" + formatCond(x.C, sig, m1, m2) + ")"
	case core.AndCond:
		return "(" + formatCond(x.L, sig, m1, m2) + " && " + formatCond(x.R, sig, m1, m2) + ")"
	case core.OrCond:
		return "(" + formatCond(x.L, sig, m1, m2) + " || " + formatCond(x.R, sig, m1, m2) + ")"
	case core.CmpCond:
		return formatTerm(x.L, sig, m1, m2) + " " + x.Op.String() + " " + formatTerm(x.R, sig, m1, m2)
	default:
		panic(fmt.Sprintf("spectext: unknown condition %T", c))
	}
}

func formatTerm(t core.Term, sig *core.ADTSig, m1, m2 string) string {
	switch x := t.(type) {
	case core.ArgTerm:
		method := m1
		v := "v1"
		if x.Side == core.Second {
			method, v = m2, "v2"
		}
		ms, _ := sig.Method(method)
		if x.Index < len(ms.Params) {
			return v + "." + ms.Params[x.Index]
		}
		return fmt.Sprintf("%s.arg%d", v, x.Index)
	case core.RetTerm:
		if x.Side == core.First {
			return "r1"
		}
		return "r2"
	case core.ConstTerm:
		return fmt.Sprintf("%v", x.V)
	case core.FnTerm:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = formatTerm(a, sig, m1, m2)
		}
		side := "s1"
		if x.State == core.Second {
			side = "s2"
		}
		return fmt.Sprintf("%s@%s(%s)", x.Fn, side, strings.Join(args, ", "))
	case core.ArithTerm:
		return "(" + formatTerm(x.L, sig, m1, m2) + " " + x.Op.String() + " " + formatTerm(x.R, sig, m1, m2) + ")"
	default:
		panic(fmt.Sprintf("spectext: unknown term %T", t))
	}
}
