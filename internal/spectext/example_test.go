package spectext_test

import (
	"fmt"

	"commlat/internal/spectext"
)

// Parsing a specification written in the concrete syntax of the paper's
// logic L1.
func ExampleParse() {
	src := `
adt counter
method inc(x)
method read() ret

inc ~ inc:   true
inc ~ read:  false
read ~ read: true
`
	spec, err := spectext.Parse(src)
	if err != nil {
		panic(err)
	}
	fmt.Println("adt:", spec.Sig.Name)
	fmt.Println("class:", spec.Classify())
	fmt.Println("inc ~ read:", spec.Cond("inc", "read"))
	// Output:
	// adt: counter
	// class: SIMPLE
	// inc ~ read: false
}
