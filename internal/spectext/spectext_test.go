package spectext

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/intset"
	"commlat/internal/adt/kdtree"
	"commlat/internal/adt/unionfind"
	"commlat/internal/core"
)

const setSrc = `
# The set of figure 2 (precise specification).
adt set
method add(x) ret
method remove(x) ret
method contains(x) ret

add ~ add:           v1.x != v2.x || (r1 = false && r2 = false)
add ~ remove:        v1.x != v2.x || (r1 = false && r2 = false)
add ~ contains:      v1.x != v2.x || r1 = false
remove ~ remove:     v1.x != v2.x || (r1 = false && r2 = false)
remove ~ contains:   v1.x != v2.x || r1 = false
contains ~ contains: true
`

func TestParseSetMatchesFigure2(t *testing.T) {
	spec, err := Parse(setSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := intset.PreciseSpec()
	for _, p := range want.OrderedPairs() {
		if !core.CondEqual(spec.Cond(p[0], p[1]), want.Cond(p[0], p[1])) {
			t.Errorf("(%s,%s): parsed %s, want %s", p[0], p[1],
				spec.Cond(p[0], p[1]), want.Cond(p[0], p[1]))
		}
	}
	if spec.Classify() != core.ClassOnline {
		t.Errorf("class = %v", spec.Classify())
	}
}

const ufSrc = `
adt unionfind
method union(a, b)
method find(a) ret
method create(c) ret
pure rank

union ~ union:  rep@s1(v2.a) != loser@s1(v1.a, v1.b) && rep@s1(v2.b) != loser@s1(v1.a, v1.b)
union ~ find:   rep@s1(v2.a) != loser@s1(v1.a, v1.b)
find ~ find:    true
union ~ create: false
find ~ create:  false
create ~ create: false
`

func TestParseUnionFindMatchesFigure5(t *testing.T) {
	spec, err := Parse(ufSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := unionfind.Spec()
	for _, p := range want.OrderedPairs() {
		if !core.CondEqual(spec.Cond(p[0], p[1]), want.Cond(p[0], p[1])) {
			t.Errorf("(%s,%s): parsed %s, want %s", p[0], p[1],
				spec.Cond(p[0], p[1]), want.Cond(p[0], p[1]))
		}
	}
	if spec.Classify() != core.ClassGeneral {
		t.Errorf("class = %v", spec.Classify())
	}
}

func TestParseArithmeticAndOrdering(t *testing.T) {
	src := `
adt acc
method bump(x) ret
bump ~ bump: v1.x + 1 < v2.x * 2 || r1 >= r2
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := spec.Cond("bump", "bump")
	ok, err := core.Eval(c, &core.PairEnv{
		Inv1: core.NewInvocation("bump", []core.Value{core.V(int64(3))}, core.VInt(int64(1))),
		Inv2: core.NewInvocation("bump", []core.Value{core.V(int64(5))}, core.VInt(int64(2))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("3+1 < 5*2 should hold")
	}
}

// TestRoundTripAllRepoSpecs: Format then Parse must reproduce every
// shipped specification (up to simplification).
func TestRoundTripAllRepoSpecs(t *testing.T) {
	specs := map[string]*core.Spec{
		"set-precise":    intset.PreciseSpec(),
		"set-rw":         intset.RWSpec(),
		"set-exclusive":  intset.ExclusiveSpec(),
		"set-bottom":     intset.BottomSpec(),
		"kdtree":         kdtree.Spec(),
		"unionfind":      unionfind.Spec(),
		"flowgraph-rw":   flowgraph.RWSpec(),
		"flowgraph-excl": flowgraph.ExclusiveSpec(),
	}
	for name, want := range specs {
		text := Format(want)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", name, err, text)
		}
		for _, p := range want.OrderedPairs() {
			if !core.CondEqual(got.Cond(p[0], p[1]), want.Cond(p[0], p[1])) {
				t.Errorf("%s (%s,%s): round trip %s, want %s",
					name, p[0], p[1], got.Cond(p[0], p[1]), want.Cond(p[0], p[1]))
			}
		}
		if got.Classify() != want.Classify() {
			t.Errorf("%s: class %v, want %v", name, got.Classify(), want.Classify())
		}
	}
}

func TestFormatEmitsDirectedOverride(t *testing.T) {
	// kd-tree has the directed remove~nearest override; Format must emit
	// both direction lines.
	text := Format(kdtree.Spec())
	if !strings.Contains(text, "nearest ~ remove:") || !strings.Contains(text, "remove ~ nearest:") {
		t.Errorf("directed override not emitted:\n%s", text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing adt":     "method m(x)\nm ~ m: true",
		"unknown method":  "adt a\nmethod m(x)\nm ~ q: true",
		"unknown param":   "adt a\nmethod m(x) ret\nm ~ m: v1.y != v2.x",
		"term as cond":    "adt a\nmethod m(x)\nm ~ m: v1.x",
		"cond as term":    "adt a\nmethod m(x)\nm ~ m: (v1.x != v2.x) + 1 = 2",
		"bad state":       "adt a\nmethod m(x)\nm ~ m: f@s3(v1.x) = 1",
		"trailing":        "adt a\nmethod m(x)\nm ~ m: true true",
		"bad char":        "adt a\nmethod m(x)\nm ~ m: v1.x ?? v2.x",
		"duplicate adt":   "adt a\nadt b",
		"stray ident":     "adt a\nmethod m(x)\nm ~ m: banana",
		"bad method line": "adt a\nmethod m x",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
# leading comment
adt a

method m(x) ret   # trailing comment? no: comments start the token
m ~ m: v1.x != v2.x
`
	// '#' begins a comment anywhere in a line.
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !core.CondEqual(spec.Cond("m", "m"), core.Ne(core.Arg1(0), core.Arg2(0))) {
		t.Errorf("cond = %s", spec.Cond("m", "m"))
	}
}

func TestParsedSpecSynthesizes(t *testing.T) {
	src := `
adt reg
method put(k) ret
method get(k) ret
put ~ put: v1.k != v2.k
put ~ get: v1.k != v2.k
get ~ get: true
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Classify() != core.ClassSimple {
		t.Fatalf("class = %v", spec.Classify())
	}
}

// TestFuzzRoundTrip formats random specifications (random SIMPLE-ish
// shapes plus state-function conditions) and reparses them; the result
// must be condition-equal.
func TestFuzzRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 200; trial++ {
		sig := &core.ADTSig{Name: "fuzz"}
		nm := 2 + r.Intn(2)
		for i := 0; i < nm; i++ {
			ms := core.MethodSig{Name: fmt.Sprintf("m%d", i), HasRet: r.Intn(2) == 0}
			for p := 0; p < 1+r.Intn(2); p++ {
				ms.Params = append(ms.Params, fmt.Sprintf("p%d", p))
			}
			sig.Methods = append(sig.Methods, ms)
		}
		spec := core.NewSpec(sig)
		spec.DeclarePure("dist")
		term := func(ms core.MethodSig, side core.Side) core.Term {
			opts := []core.Term{}
			for i := range ms.Params {
				opts = append(opts, core.ArgTerm{Side: side, Index: i})
			}
			if ms.HasRet {
				opts = append(opts, core.RetTerm{Side: side})
			}
			opts = append(opts, core.Lit(int64(r.Intn(3))))
			return opts[r.Intn(len(opts))]
		}
		var leaf func(m1, m2 core.MethodSig) core.Cond
		leaf = func(m1, m2 core.MethodSig) core.Cond {
			switch r.Intn(5) {
			case 0:
				return core.Ne(term(m1, core.First), term(m2, core.Second))
			case 1:
				return core.Eq(term(m1, core.First), core.Lit(false))
			case 2:
				return core.Gt(core.Fn2("dist", term(m1, core.First), term(m2, core.Second)), core.Lit(int64(r.Intn(5))))
			case 3:
				return core.Lt(core.Add(term(m1, core.First), core.Lit(int64(1))), term(m2, core.Second))
			default:
				return core.Eq(core.Fn1("rep", term(m1, core.First)), term(m2, core.Second))
			}
		}
		for i, m1 := range sig.Methods {
			for _, m2 := range sig.Methods[i:] {
				var c core.Cond
				switch r.Intn(4) {
				case 0:
					c = core.True()
				case 1:
					c = core.False()
				case 2:
					c = leaf(m1, m2)
				default:
					c = core.Or(leaf(m1, m2), core.And(leaf(m1, m2), leaf(m1, m2)))
				}
				spec.Set(m1.Name, m2.Name, c)
			}
		}
		text := Format(spec)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		for _, p := range spec.OrderedPairs() {
			if !core.CondEqual(got.Cond(p[0], p[1]), spec.Cond(p[0], p[1])) {
				t.Fatalf("trial %d (%s,%s): %s != %s\n%s", trial, p[0], p[1],
					got.Cond(p[0], p[1]), spec.Cond(p[0], p[1]), text)
			}
		}
	}
}

func TestDuplicatePairRejected(t *testing.T) {
	src := `adt a
method m(x)
method n(x)

m ~ n: true
n ~ n: true
m ~ n: false
`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected duplicate-pair error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 7") || !strings.Contains(msg, "duplicate condition for m ~ n") ||
		!strings.Contains(msg, "first defined at line 5") {
		t.Errorf("duplicate error should carry both positions, got: %v", err)
	}

	// The mirror-direction pair is a distinct ordered pair, not a
	// duplicate: a directed override stores both directions.
	ok := `adt a
method m(x)
method n(x)

m ~ n: v1.x < v2.x
n ~ m: v2.x < v1.x
n ~ n: true
m ~ m: true
`
	if _, err := Parse(ok); err != nil {
		t.Fatalf("directed override misread as duplicate: %v", err)
	}
}

func TestOrientedRoundTrip(t *testing.T) {
	src := `adt uf
method union(a, b)
method find(a) ret

oriented union ~ union

union ~ union: rep@s1(v2.a) != v1.a
union ~ find:  true
find ~ find:   true
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !spec.IsOriented("union", "union") {
		t.Fatal("oriented declaration not recorded")
	}
	if spec.IsOriented("union", "find") {
		t.Fatal("orientation leaked to an undeclared pair")
	}

	text := Format(spec)
	if !strings.Contains(text, "oriented union ~ union") {
		t.Fatalf("Format dropped the oriented line:\n%s", text)
	}
	again, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !again.IsOriented("union", "union") {
		t.Fatal("orientation lost in round trip")
	}
}

func TestOrientedErrors(t *testing.T) {
	cases := map[string]string{
		"unknown method": "adt a\nmethod m(x)\noriented m ~ q\nm ~ m: true",
		"bad usage":      "adt a\nmethod m(x)\noriented m m\nm ~ m: true",
		"missing rhs":    "adt a\nmethod m(x)\noriented m ~\nm ~ m: true",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}
