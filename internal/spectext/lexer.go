// Package spectext is a concrete syntax for commutativity specifications:
// a textual form of the paper's logic L1 (figure 1) with the ADT
// signature declarations needed to interpret it. It lets specifications
// live in files and be checked, classified and synthesized from the
// command line (`commlat check`).
//
// Example:
//
//	adt set
//	method add(x) ret
//	method remove(x) ret
//	method contains(x) ret
//
//	add ~ add:           v1.x != v2.x || (r1 = false && r2 = false)
//	add ~ remove:        v1.x != v2.x || (r1 = false && r2 = false)
//	add ~ contains:      v1.x != v2.x || r1 = false
//	remove ~ remove:     v1.x != v2.x || (r1 = false && r2 = false)
//	remove ~ contains:   v1.x != v2.x || r1 = false
//	contains ~ contains: true
//
// Terms: `v1.<param>` / `v2.<param>` are the two invocations' arguments,
// `r1` / `r2` their return values, numbers and `true`/`false` literals,
// `fn@s1(...)` / `fn@s2(...)` state-function applications, and `+ - * /`
// arithmetic. Conditions use `= != < > <= >=`, `&& || !` and parentheses.
// A `pure` declaration names state-independent functions. Each `m1 ~ m2:`
// line sets the condition for that ordered pair; the mirrored pair is
// derived by role swap unless a separate line overrides it.
package spectext

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single/multi-char operator or punctuation
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	line int // for error messages (1-based, set by the parser per line)
	toks []token
}

// lexLine tokenizes one logical line.
func lexLine(line string, lineno int) ([]token, error) {
	l := &lexer{src: line, line: lineno}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.pos = len(l.src) // comment to end of line
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], start)
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		default:
			if op, n := matchOp(l.src[l.pos:]); n > 0 {
				l.emit(tokPunct, op, l.pos)
				l.pos += n
			} else {
				return nil, fmt.Errorf("line %d: unexpected character %q", lineno, c)
			}
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

// multi-char operators first so "!=" is not lexed as "!" "=".
var operators = []string{
	"||", "&&", "!=", "<=", ">=",
	"(", ")", ",", ".", "~", ":", "@", "=", "<", ">", "!", "+", "-", "*", "/",
}

func matchOp(s string) (string, int) {
	for _, op := range operators {
		if strings.HasPrefix(s, op) {
			return op, len(op)
		}
	}
	return "", 0
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
