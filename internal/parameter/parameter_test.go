package parameter

import (
	"errors"
	"testing"

	"commlat/internal/adt/intset"
	"commlat/internal/engine"
)

func TestIndependentItemsOneRound(t *testing.T) {
	s := intset.NewRWLocked(intset.NewHashRep())
	items := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := Profile(items, func(tx *engine.Tx, x int64, _ func(int64)) (bool, error) {
		_, err := s.Add(tx, x)
		return true, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPath != 1 || res.Work != 8 {
		t.Errorf("independent items: path=%d work=%d, want 1/8", res.CriticalPath, res.Work)
	}
	if res.AvgParallelism != 8 {
		t.Errorf("parallelism = %v, want 8", res.AvgParallelism)
	}
	if res.Conflicts != 0 {
		t.Errorf("conflicts = %d", res.Conflicts)
	}
}

func TestFullySerialChain(t *testing.T) {
	// Every iteration touches the same element: exactly one commits per
	// round under exclusive locking.
	s := intset.NewExclusiveLocked(intset.NewHashRep())
	items := make([]int64, 6)
	res, err := Profile(items, func(tx *engine.Tx, _ int64, _ func(int64)) (bool, error) {
		_, err := s.Contains(tx, 42)
		return true, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPath != 6 || res.Work != 6 {
		t.Errorf("serial chain: path=%d work=%d, want 6/6", res.CriticalPath, res.Work)
	}
	if res.AvgParallelism != 1 {
		t.Errorf("parallelism = %v, want 1", res.AvgParallelism)
	}
	if res.Conflicts != 5+4+3+2+1 {
		t.Errorf("conflicts = %d, want 15", res.Conflicts)
	}
}

func TestReadSharingRaisesParallelism(t *testing.T) {
	// The same workload under read/write locks commits in one round —
	// the lattice point changes the measured parallelism, which is the
	// whole point of Table 1.
	s := intset.NewRWLocked(intset.NewHashRep())
	items := make([]int64, 6)
	res, err := Profile(items, func(tx *engine.Tx, _ int64, _ func(int64)) (bool, error) {
		_, err := s.Contains(tx, 42)
		return true, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPath != 1 || res.AvgParallelism != 6 {
		t.Errorf("rw sharing: path=%d par=%v, want 1/6", res.CriticalPath, res.AvgParallelism)
	}
}

func TestDynamicWorkJoinsLaterRounds(t *testing.T) {
	// Item 0 pushes item 1 which pushes item 2: three rounds even though
	// nothing conflicts.
	s := intset.NewRWLocked(intset.NewHashRep())
	res, err := Profile([]int64{0}, func(tx *engine.Tx, x int64, push func(int64)) (bool, error) {
		if _, err := s.Add(tx, x); err != nil {
			return false, err
		}
		if x < 2 {
			push(x + 1)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPath != 3 || res.Work != 3 {
		t.Errorf("chain: path=%d work=%d, want 3/3", res.CriticalPath, res.Work)
	}
}

func TestUnproductiveIterationsDontCount(t *testing.T) {
	s := intset.NewRWLocked(intset.NewHashRep())
	items := []int64{1, 2, 3}
	res, err := Profile(items, func(tx *engine.Tx, x int64, _ func(int64)) (bool, error) {
		_, err := s.Contains(tx, x)
		return x == 1, err // only one productive iteration
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work != 1 || res.CriticalPath != 1 {
		t.Errorf("work=%d path=%d, want 1/1", res.Work, res.CriticalPath)
	}
}

func TestFatalErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Profile([]int{1}, func(tx *engine.Tx, _ int, _ func(int)) (bool, error) {
		return false, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}
