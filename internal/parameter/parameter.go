// Package parameter estimates how much parallelism a speculative
// computation exhibits under a given conflict-detection scheme, in the
// manner of the ParaMeter tool the paper uses for Table 1: iterations
// are greedily scheduled in rounds on an idealized machine with
// unboundedly many processors, where a round executes a maximal set of
// mutually non-conflicting iterations. The number of rounds is the
// critical path length; committed work divided by rounds is the average
// parallelism.
//
// Profiling runs single-threaded: all of a round's transactions are held
// open simultaneously so that the round's iterations are checked against
// each other by exactly the conflict detector under study, then committed
// together.
package parameter

import "commlat/internal/engine"

// Body is one speculative iteration. It reports whether it performed
// real work (stale or empty iterations return false, so they inflate
// neither work nor the critical path); push enqueues follow-on items.
type Body[T any] func(tx *engine.Tx, item T, push func(T)) (bool, error)

// Result summarizes a profile.
type Result struct {
	Work           int     // committed productive iterations
	CriticalPath   int     // rounds containing productive work
	AvgParallelism float64 // Work / CriticalPath
	Conflicts      int     // iterations deferred to a later round
}

// Profile greedily schedules the computation and returns its parallelism
// profile. A non-conflict error from the body aborts profiling.
func Profile[T any](items []T, body Body[T]) (Result, error) {
	var res Result
	pending := append([]T(nil), items...)
	for len(pending) > 0 {
		// Deferred (conflicted) items lead the next round, ahead of
		// newly spawned work: a conflicted iteration must eventually run
		// before the iterations it keeps conflicting with, or a cyclic
		// workload (clustering's retry loop) never makes progress.
		var deferred, spawned []T
		var open []*engine.Tx
		productive := 0
		for _, item := range pending {
			tx := engine.NewTx()
			pushed := []T{}
			did, err := body(tx, item, func(t T) { pushed = append(pushed, t) })
			if err != nil {
				tx.Abort()
				if !engine.IsConflict(err) {
					for _, o := range open {
						o.Commit()
					}
					return res, err
				}
				res.Conflicts++
				deferred = append(deferred, item)
				continue
			}
			open = append(open, tx)
			spawned = append(spawned, pushed...)
			if did {
				productive++
			}
		}
		for _, tx := range open {
			tx.Commit()
		}
		if productive > 0 {
			res.CriticalPath++
			res.Work += productive
		}
		pending = append(deferred, spawned...)
	}
	if res.CriticalPath > 0 {
		res.AvgParallelism = float64(res.Work) / float64(res.CriticalPath)
	}
	return res, nil
}
