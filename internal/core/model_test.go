package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// setModel is an executable abstract set over small ints, the reference
// model used to brute-force-validate the set specifications.
type setModel struct {
	elems map[int64]bool
}

func newSetModel(vals ...int64) *setModel {
	m := &setModel{elems: map[int64]bool{}}
	for _, v := range vals {
		m.elems[v] = true
	}
	return m
}

func (m *setModel) Clone() Model {
	c := newSetModel()
	for k := range m.elems {
		c.elems[k] = true
	}
	return c
}

func (m *setModel) Apply(method string, args []Value) (Value, error) {
	x, ok := args[0].AsInt()
	if !ok {
		return Value{}, fmt.Errorf("setModel: bad arg %v", args[0])
	}
	switch method {
	case "add":
		if m.elems[x] {
			return VBool(false), nil
		}
		m.elems[x] = true
		return VBool(true), nil
	case "remove":
		if !m.elems[x] {
			return VBool(false), nil
		}
		delete(m.elems, x)
		return VBool(true), nil
	case "contains":
		return VBool(m.elems[x]), nil
	default:
		return Value{}, fmt.Errorf("setModel: unknown method %s", method)
	}
}

func (m *setModel) StateKey() string {
	keys := make([]int64, 0, len(m.elems))
	for k := range m.elems {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return fmt.Sprint(keys)
}

func (m *setModel) StateFn(fn string, args []Value) (Value, error) {
	switch fn {
	case "part":
		return VInt(args[0].Int() % 2), nil
	default:
		return Value{}, fmt.Errorf("setModel: unknown fn %s", fn)
	}
}

func setStates() []Model {
	return []Model{newSetModel(), newSetModel(1), newSetModel(1, 2), newSetModel(2, 3)}
}

func setCalls() []Call {
	var calls []Call
	for _, m := range []string{"add", "remove", "contains"} {
		for v := int64(1); v <= 3; v++ {
			calls = append(calls, Call{Method: m, Args: []Value{VInt(v)}})
		}
	}
	return calls
}

func TestPreciseSetSpecSound(t *testing.T) {
	bad, err := CheckCondSound(preciseSetSpec(), setStates(), setCalls())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestRWSetSpecSound(t *testing.T) {
	bad, err := CheckCondSound(rwSetSpec(), setStates(), setCalls())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestPartitionedSetSpecSound(t *testing.T) {
	part, err := rwSetSpec().PartitionSpec("part")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := CheckCondSound(part, setStates(), setCalls())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

// TestBogusSpecCaught ensures the checker has teeth: claiming that add
// always commutes with contains must produce violations.
func TestBogusSpecCaught(t *testing.T) {
	s := rwSetSpec().Clone()
	s.Set("add", "contains", True())
	bad, err := CheckCondSound(s, setStates(), setCalls())
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Error("checker failed to catch an unsound condition")
	}
}

func TestCommutesDirect(t *testing.T) {
	m := newSetModel(1)
	// contains(1) and contains(2) always commute.
	ok, err := Commutes(m, Call{"contains", []Value{VInt(1)}}, Call{"contains", []Value{VInt(2)}})
	if err != nil || !ok {
		t.Errorf("contains/contains should commute: %v %v", ok, err)
	}
	// add(2) and contains(2) do not commute on a set without 2.
	ok, err = Commutes(m, Call{"add", []Value{VInt(2)}}, Call{"contains", []Value{VInt(2)}})
	if err != nil || ok {
		t.Errorf("add(2)/contains(2) should not commute: %v %v", ok, err)
	}
	// add(1) and contains(1) DO commute when 1 is already present.
	ok, err = Commutes(m, Call{"add", []Value{VInt(1)}}, Call{"contains", []Value{VInt(1)}})
	if err != nil || !ok {
		t.Errorf("non-mutating add should commute with contains: %v %v", ok, err)
	}
}

// TestSerializableRandomHistories is the Theorem 2 property test: on
// random interleaved two-transaction histories, whenever every
// cross-transaction pair satisfies its commutativity condition, a serial
// order must be equivalent.
func TestSerializableRandomHistories(t *testing.T) {
	spec := preciseSetSpec()
	r := rand.New(rand.NewSource(11))
	methods := []string{"add", "remove", "contains"}
	held, total := 0, 0
	for trial := 0; trial < 3000; trial++ {
		n := 2 + r.Intn(5)
		hist := make([]Step, n)
		for i := range hist {
			hist[i] = Step{
				Tx:   r.Intn(2),
				Call: Call{Method: methods[r.Intn(3)], Args: []Value{VInt(int64(1 + r.Intn(3)))}},
			}
		}
		initial := newSetModel()
		for v := int64(1); v <= 3; v++ {
			if r.Intn(2) == 0 {
				initial.elems[v] = true
			}
		}
		rep, err := CheckSerializable(initial, spec, hist)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if rep.CondsHeld {
			held++
			if !rep.SerialOK {
				t.Fatalf("conditions held but history not serializable: %+v from %s", hist, initial.StateKey())
			}
		}
	}
	if held == 0 {
		t.Error("no history ever satisfied all conditions; test is vacuous")
	}
	t.Logf("histories: %d total, %d with all conditions held", total, held)
}

// TestSerializableDetectsConflict checks that a history with a genuine
// conflict is reported as CondsHeld == false.
func TestSerializableDetectsConflict(t *testing.T) {
	spec := preciseSetSpec()
	hist := []Step{
		{Tx: 0, Call: Call{"add", []Value{VInt(1)}}},      // mutates
		{Tx: 1, Call: Call{"contains", []Value{VInt(1)}}}, // observes the mutation
	}
	rep, err := CheckSerializable(newSetModel(), spec, hist)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CondsHeld {
		t.Error("mutating add vs contains on same key should violate the condition")
	}
}

func TestNewInvocationNormalizes(t *testing.T) {
	inv := NewInvocation("m", []Value{V(int32(4)), V(float32(0.5))}, V(uint8(9)))
	if inv.Args.At(0) != VInt(4) || inv.Args.At(1) != VFloat(0.5) || inv.Ret != VInt(9) {
		t.Errorf("NewInvocation did not normalize: %+v", inv)
	}
}

func TestEvalTermErrors(t *testing.T) {
	env := &PairEnv{Inv1: Invocation{Method: "m"}, Inv2: Invocation{}}
	if _, err := EvalTerm(Arg1(0), env); err == nil {
		t.Error("out-of-range argument should error")
	}
	if _, err := EvalTerm(Fn1("f"), env); err == nil {
		t.Error("missing state resolver should error")
	}
	if _, err := Eval(Lt(Lit("a"), Lit(1)), env); err == nil {
		t.Error("ordering strings should error")
	}
}

func TestEvalFnRouting(t *testing.T) {
	env := &PairEnv{
		Inv1: NewInvocation("m1", []Value{VInt(3)}, Value{}),
		Inv2: NewInvocation("m2", []Value{VInt(4)}, Value{}),
		S1:   func(fn string, args []Value) (Value, error) { return VInt(args[0].Int() + 100), nil },
		S2:   func(fn string, args []Value) (Value, error) { return VInt(args[0].Int() + 200), nil },
	}
	v, err := EvalTerm(Fn1("f", Arg1(0)), env)
	if err != nil || v != VInt(103) {
		t.Errorf("Fn1 routing: %v %v", v, err)
	}
	v, err = EvalTerm(Fn2("f", Arg2(0)), env)
	if err != nil || v != VInt(204) {
		t.Errorf("Fn2 routing: %v %v", v, err)
	}
	v, err = EvalTerm(Add(Fn1("f", Arg1(0)), Lit(1)), env)
	if err != nil || v != VInt(104) {
		t.Errorf("arith over fn: %v %v", v, err)
	}
}
