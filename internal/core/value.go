// Package core implements the commutativity-condition framework of
// "Exploiting the Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
// A commutativity condition is a predicate over a pair of method
// invocations — their arguments, return values, and functions of the
// abstract states they were invoked in — that, when true, guarantees the
// two invocations can be reordered in any C-equivalent history (Definition
// 3 of the paper). Conditions are represented as ASTs in the paper's logic
// L1 (figure 1) so that the rest of the system can classify them into the
// sub-logics L2 (SIMPLE) and L3 (ONLINE-CHECKABLE), arrange specifications
// into the commutativity lattice, and synthesize conflict detectors.
package core

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic kind of a tagged Value.
type Kind uint8

// The value kinds of the logic's dynamic domain.
const (
	KindNil    Kind = iota // no value (void returns); the zero Value
	KindBool               // bits is 0 or 1
	KindInt                // bits holds the int64 bit pattern
	KindFloat              // bits holds math.Float64bits
	KindString             // str holds the string, bits its precomputed hash
	KindNaN                // canonical NaN map key produced by MapKey
	KindUnset              // detector-internal "slot not filled" sentinel
	KindRef                // escape hatch: arbitrary (comparable) user types
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindNaN:
		return "NaN-key"
	case KindUnset:
		return "unset"
	case KindRef:
		return "ref"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is the dynamic value domain of the logic: method arguments, return
// values, constants and state-function results. It is an inline tagged
// union — booleans, integers (normalized to int64), floats (normalized to
// float64) and strings are stored unboxed, so constructing, comparing,
// hashing and map-keying them never allocates. Comparable user types (graph
// nodes, points) ride in the ref escape hatch and compare with ==.
//
// The zero Value is the nil value (KindNil), used for methods without a
// meaningful return. Values of basic kinds are canonical: two equal
// numbers/strings/bools built by any constructor are == as Go structs, so
// Value works directly as a map key (subject to the MapKey caveats for
// cross-kind numeric equality).
type Value struct {
	kind Kind
	bits uint64 // bool: 0/1; int: int64 bits; float: Float64bits; string: hash
	str  string
	ref  any
}

// Nil returns the nil Value (identical to the zero Value).
func Nil() Value { return Value{} }

// VBool returns a boolean Value.
func VBool(b bool) Value {
	var bits uint64
	if b {
		bits = 1
	}
	return Value{kind: KindBool, bits: bits}
}

// VInt returns an integer Value.
func VInt(i int64) Value { return Value{kind: KindInt, bits: uint64(i)} }

// VFloat returns a float Value.
func VFloat(f float64) Value { return Value{kind: KindFloat, bits: math.Float64bits(f)} }

// VString returns a string Value. The hash is precomputed so later Hash
// calls are O(1).
func VString(s string) Value { return Value{kind: KindString, bits: fnv64(s), str: s} }

// VRef wraps an arbitrary user value. Basic kinds are normalized into
// their unboxed representations (so VRef never hides an int64 where
// ValueEq would miss it); anything else is stored in the ref escape hatch
// and must be comparable with == if it will be compared or indexed.
func VRef(x any) Value { return V(x) }

// Unset returns the detector-internal sentinel marking an unfilled slot.
// It compares unequal (via ValueEq) to every value including itself.
func Unset() Value { return Value{kind: KindUnset} }

// V converts a Go value into a tagged Value, normalizing so that equality
// and ordering behave uniformly: every integer kind becomes KindInt
// (int64) and float32 becomes KindFloat (float64). A Value passes through
// unchanged; nil becomes the nil Value; other types go to KindRef.
//
// V replaces the boxed representation's Norm: normalization now happens
// once at construction, and every later ValueEq/Compare/MapKey/Hash is
// allocation-free.
func V(x any) Value {
	switch v := x.(type) {
	case nil:
		return Value{}
	case Value:
		return v
	case bool:
		return VBool(v)
	case int:
		return VInt(int64(v))
	case int8:
		return VInt(int64(v))
	case int16:
		return VInt(int64(v))
	case int32:
		return VInt(int64(v))
	case int64:
		return VInt(v)
	case uint:
		return VInt(int64(v))
	case uint8:
		return VInt(int64(v))
	case uint16:
		return VInt(int64(v))
	case uint32:
		return VInt(int64(v))
	case uint64:
		return VInt(int64(v))
	case float32:
		return VFloat(float64(v))
	case float64:
		return VFloat(v)
	case string:
		return VString(v)
	default:
		return Value{kind: KindRef, ref: x}
	}
}

// Norm is retained from the boxed representation as a synonym for V: it
// normalizes a Go value into the canonical tagged form. With tagged
// values it allocates only when x is a non-basic user type (interface
// construction at the call site).
func Norm(x any) Value { return V(x) }

// Kind reports the value's kind tag.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether v is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// IsUnset reports whether v is the unset sentinel.
func (v Value) IsUnset() bool { return v.kind == KindUnset }

// AsBool returns the boolean payload, if v is a bool.
func (v Value) AsBool() (bool, bool) { return v.bits != 0, v.kind == KindBool }

// AsInt returns the integer payload, if v is an int.
func (v Value) AsInt() (int64, bool) { return int64(v.bits), v.kind == KindInt }

// AsFloat returns the float payload, if v is a float.
func (v Value) AsFloat() (float64, bool) {
	return math.Float64frombits(v.bits), v.kind == KindFloat
}

// AsNumber returns v as a float64 if it is numeric (int or float).
func (v Value) AsNumber() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(int64(v.bits)), true
	case KindFloat:
		return math.Float64frombits(v.bits), true
	default:
		return 0, false
	}
}

// AsString returns the string payload, if v is a string.
func (v Value) AsString() (string, bool) { return v.str, v.kind == KindString }

// AsRef returns the ref payload, if v is a user-type value.
func (v Value) AsRef() (any, bool) { return v.ref, v.kind == KindRef }

// Bool returns the boolean payload or panics, mirroring a .(bool)
// assertion on the old boxed representation.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("core: Value is " + v.kind.String() + ", not bool")
	}
	return v.bits != 0
}

// Int returns the integer payload or panics, mirroring .(int64).
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("core: Value is " + v.kind.String() + ", not int")
	}
	return int64(v.bits)
}

// Float returns the float payload or panics, mirroring .(float64).
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic("core: Value is " + v.kind.String() + ", not float")
	}
	return math.Float64frombits(v.bits)
}

// Str returns the string payload or panics, mirroring .(string).
func (v Value) Str() string {
	if v.kind != KindString {
		panic("core: Value is " + v.kind.String() + ", not string")
	}
	return v.str
}

// Ref returns the user-type payload or panics.
func (v Value) Ref() any {
	if v.kind != KindRef {
		panic("core: Value is " + v.kind.String() + ", not ref")
	}
	return v.ref
}

// Unbox returns the value as a plain Go any, the way the old boxed
// representation stored it: nil, bool, int64, float64, string, or the
// user value. It allocates for kinds a Go interface cannot hold inline.
func (v Value) Unbox() any {
	switch v.kind {
	case KindNil:
		return nil
	case KindBool:
		return v.bits != 0
	case KindInt:
		return int64(v.bits)
	case KindFloat:
		return math.Float64frombits(v.bits)
	case KindString:
		return v.str
	case KindRef:
		return v.ref
	case KindNaN:
		return math.NaN()
	default:
		return nil
	}
}

// String renders the value the way fmt's %v rendered the boxed form, so
// spec pretty-printing and error messages are stable across the
// representation change.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "<nil>"
	case KindBool:
		if v.bits != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.bits), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.bits), 'g', -1, 64)
	case KindString:
		return v.str
	case KindNaN:
		return "NaN-key"
	case KindUnset:
		return "<unset>"
	case KindRef:
		return fmt.Sprint(v.ref)
	default:
		return "<invalid>"
	}
}

// Hash returns a cheap 64-bit hash consistent with ValueEq for values
// MapKey can canonicalize: numbers hash by their canonical numeric key
// (so int64(5) and float64(5.0) collide as ValueEq demands), strings by
// their precomputed FNV hash. Ref values fall back to hashing their
// printed form and are the only kind whose Hash allocates.
func (v Value) Hash() uint64 {
	switch v.kind {
	case KindNil:
		return 0x9e3779b97f4a7c15
	case KindBool:
		if v.bits != 0 {
			return 0x5bd1e9955bd1e995
		}
		return 0x2545f4914f6cdd1d
	case KindInt:
		return splitmix64(v.bits)
	case KindFloat:
		f := math.Float64frombits(v.bits)
		if k, ok := MapKey(v); ok && k.kind == KindInt {
			return splitmix64(k.bits)
		}
		if math.IsNaN(f) {
			return 0x7ff8000000000000
		}
		return splitmix64(v.bits)
	case KindString:
		return splitmix64(v.bits)
	case KindNaN:
		return 0x7ff8000000000000
	case KindUnset:
		return 0xdeadbeefdeadbeef
	default:
		return fnv64(fmt.Sprint(v.ref))
	}
}

// KeyHash returns Hash of v's canonical map key without materializing
// the intermediate Value: it fuses MapKey and Hash through a pointer
// receiver so hot paths (the cascade's key and probe hashing) avoid
// two 40-byte Value copies per key. The boolean mirrors MapKey's
// second result: false means v cannot be keyed soundly and the caller
// must treat it as colliding with everything.
func (v *Value) KeyHash() (uint64, bool) {
	switch v.kind {
	case KindNil:
		return 0x9e3779b97f4a7c15, true
	case KindBool:
		if v.bits != 0 {
			return 0x5bd1e9955bd1e995, true
		}
		return 0x2545f4914f6cdd1d, true
	case KindInt, KindString:
		return splitmix64(v.bits), true
	case KindNaN:
		return 0x7ff8000000000000, true
	case KindFloat:
		x := math.Float64frombits(v.bits)
		if math.IsNaN(x) {
			return 0x7ff8000000000000, true
		}
		if x == math.Trunc(x) {
			if x > -maxExactFloatKey && x < maxExactFloatKey {
				return splitmix64(uint64(int64(x))), true
			}
			return 0, false
		}
		return splitmix64(math.Float64bits(x)), true
	default:
		return 0, false
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a fast,
// well-mixed 64-bit hash for integer keys.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over the bytes of s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ValueEq reports whether two values are equal. An int and a float
// compare equal when they denote the same number, mirroring the
// arithmetic-friendly equality of L1. NaN is unequal to everything
// (including itself); the unset sentinel likewise.
func ValueEq(a, b Value) bool {
	if a.kind == b.kind {
		switch a.kind {
		case KindNil:
			return true
		case KindBool, KindInt:
			return a.bits == b.bits
		case KindFloat:
			return math.Float64frombits(a.bits) == math.Float64frombits(b.bits)
		case KindString:
			return a.str == b.str
		case KindNaN:
			// The canonical NaN key exists only so an index can bucket
			// NaNs together; as a value it keeps NaN's self-inequality.
			return false
		case KindUnset:
			return false
		case KindRef:
			return a.ref == b.ref
		}
		return false
	}
	// Cross-kind: only int/float mix.
	if a.kind == KindInt && b.kind == KindFloat {
		return float64(int64(a.bits)) == math.Float64frombits(b.bits)
	}
	if a.kind == KindFloat && b.kind == KindInt {
		return math.Float64frombits(a.bits) == float64(int64(b.bits))
	}
	return false
}

// Compare orders two numeric values three-way: -1 if a < b, +1 if b < a,
// 0 otherwise (which for NaN operands means "unordered", matching IEEE
// comparison semantics where <, > and = are all false). It returns an
// error for non-numeric operands since L1 only defines < and > on
// arithmetic terms.
func Compare(a, b Value) (int, error) {
	af, aok := a.AsNumber()
	bf, bok := b.AsNumber()
	if !aok || !bok {
		return 0, fmt.Errorf("core: ordering undefined for %s and %s", a.kind, b.kind)
	}
	switch {
	case af < bf:
		return -1, nil
	case bf < af:
		return 1, nil
	default:
		return 0, nil
	}
}

// valueLess orders two numeric values; it returns an error for
// non-numeric operands.
func valueLess(a, b Value) (bool, error) {
	c, err := Compare(a, b)
	return c < 0, err
}

// arith applies an arithmetic operator to two numeric values. Integer
// operands stay integral except for division, which is performed in
// floating point to avoid surprising truncation in distance computations.
func arith(op ArithOp, a, b Value) (Value, error) {
	if a.kind == KindInt && b.kind == KindInt && op != OpDiv {
		ai, bi := int64(a.bits), int64(b.bits)
		switch op {
		case OpAdd:
			return VInt(ai + bi), nil
		case OpSub:
			return VInt(ai - bi), nil
		case OpMul:
			return VInt(ai * bi), nil
		}
	}
	af, aok := a.AsNumber()
	bf, bok := b.AsNumber()
	if !aok || !bok {
		return Value{}, fmt.Errorf("core: arithmetic undefined for %s and %s", a.kind, b.kind)
	}
	switch op {
	case OpAdd:
		return VFloat(af + bf), nil
	case OpSub:
		return VFloat(af - bf), nil
	case OpMul:
		return VFloat(af * bf), nil
	case OpDiv:
		// IEEE-754 semantics: x/0 is ±Inf by the sign of x (and of the
		// zero), 0/0 is NaN.
		return VFloat(af / bf), nil
	}
	return Value{}, fmt.Errorf("core: unknown arithmetic op %v", op)
}

// maxExactFloatKey bounds the integral float64 range MapKey folds onto
// int keys: beyond ±2^53 distinct int64 values round onto the same
// float64, so a single canonical key can no longer represent the
// (non-transitive!) cross-type equalities ValueEq admits there.
const maxExactFloatKey = 1 << 53

// MapKey canonicalizes a value into a key consistent with ValueEq: if
// ValueEq(a, b) then MapKey(a) == MapKey(b), and if MapKey(a) ==
// MapKey(b) and the key is not the NaN key then ValueEq(a, b). In
// particular int 5 and float 5.0, which ValueEq equates, share the key
// VInt(5); every NaN maps to the KindNaN key (all NaNs share it, which
// over-approximates collision — safe for an index that must only ever
// surface too many candidates, never too few). The second result is
// false for values the map cannot key soundly — integral floats at or
// beyond ±2^53 (where float rounding makes ValueEq non-transitive across
// int64s) and ref values (which may not even be comparable); callers
// must treat such values as potentially colliding with everything.
func MapKey(v Value) (Value, bool) {
	switch v.kind {
	case KindNil, KindBool, KindInt, KindString, KindNaN:
		return v, true
	case KindFloat:
		x := math.Float64frombits(v.bits)
		if math.IsNaN(x) {
			return Value{kind: KindNaN}, true
		}
		if x == math.Trunc(x) {
			if x > -maxExactFloatKey && x < maxExactFloatKey {
				return VInt(int64(x)), true
			}
			return Value{}, false
		}
		// Non-integral floats are already canonical bit patterns
		// (±0.0 and NaN were handled above); rebuild to be safe.
		return VFloat(x), true
	default:
		return Value{}, false
	}
}
