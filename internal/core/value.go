// Package core implements the commutativity-condition framework of
// "Exploiting the Commutativity Lattice" (Kulkarni et al., PLDI 2011).
//
// A commutativity condition is a predicate over a pair of method
// invocations — their arguments, return values, and functions of the
// abstract states they were invoked in — that, when true, guarantees the
// two invocations can be reordered in any C-equivalent history (Definition
// 3 of the paper). Conditions are represented as ASTs in the paper's logic
// L1 (figure 1) so that the rest of the system can classify them into the
// sub-logics L2 (SIMPLE) and L3 (ONLINE-CHECKABLE), arrange specifications
// into the commutativity lattice, and synthesize conflict detectors.
package core

import (
	"fmt"
	"math"
)

// Value is the dynamic value domain of the logic: method arguments, return
// values, constants and state-function results. Supported kinds are
// booleans, integers (normalized to int64), floats (normalized to float64),
// strings, nil (for methods without a meaningful return), and any
// comparable user type (compared with ==).
type Value any

// Norm normalizes a Value so that equality and ordering behave uniformly:
// every integer kind becomes int64 and float32 becomes float64.
func Norm(v Value) Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// ValueEq reports whether two values are equal after normalization.
// An int64 and a float64 compare equal when they denote the same number,
// mirroring the arithmetic-friendly equality of L1.
func ValueEq(a, b Value) bool {
	a, b = Norm(a), Norm(b)
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case float64:
			return float64(x) == y
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return x == float64(y)
		case float64:
			return x == y
		}
	}
	return a == b
}

// valueLess orders two numeric values; it returns an error for
// non-numeric operands since L1 only defines < and > on arithmetic terms.
func valueLess(a, b Value) (bool, error) {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return false, fmt.Errorf("core: ordering undefined for %T and %T", a, b)
	}
	return af < bf, nil
}

func toFloat(v Value) (float64, bool) {
	switch x := Norm(v).(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

func toBool(v Value) (bool, bool) {
	b, ok := v.(bool)
	return b, ok
}

// arith applies an arithmetic operator to two numeric values. Integer
// operands stay integral except for division, which is performed in
// floating point to avoid surprising truncation in distance computations.
func arith(op ArithOp, a, b Value) (Value, error) {
	ai, aInt := Norm(a).(int64)
	bi, bInt := Norm(b).(int64)
	if aInt && bInt && op != OpDiv {
		switch op {
		case OpAdd:
			return ai + bi, nil
		case OpSub:
			return ai - bi, nil
		case OpMul:
			return ai * bi, nil
		}
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return nil, fmt.Errorf("core: arithmetic undefined for %T and %T", a, b)
	}
	switch op {
	case OpAdd:
		return af + bf, nil
	case OpSub:
		return af - bf, nil
	case OpMul:
		return af * bf, nil
	case OpDiv:
		// IEEE-754 semantics: x/0 is ±Inf by the sign of x (and of the
		// zero), 0/0 is NaN. The seed returned +Inf unconditionally,
		// losing the sign of negative numerators and fabricating a
		// definite value for the indeterminate 0/0.
		return af / bf, nil
	}
	return nil, fmt.Errorf("core: unknown arithmetic op %v", op)
}

// NaNKey is the canonical map key MapKey assigns to every NaN value.
// All NaNs share it, which over-approximates collision (ValueEq treats
// NaN as unequal to everything, including itself) — safe for an index
// that must only ever surface too many candidates, never too few, and
// unlike a raw NaN float key it remains deletable from a Go map.
type NaNKey struct{}

// maxExactFloatKey bounds the integral float64 range MapKey folds onto
// int64 keys: beyond ±2^53 distinct int64 values round onto the same
// float64, so a single canonical key can no longer represent the
// (non-transitive!) cross-type equalities ValueEq admits there.
const maxExactFloatKey = 1 << 53

// MapKey canonicalizes a value into a Go-map key that is consistent
// with ValueEq: if ValueEq(a, b) then MapKey(a) == MapKey(b), and if
// MapKey(a) == MapKey(b) and the key is not NaNKey then ValueEq(a, b).
// In particular int64(5) and float64(5.0), which ValueEq equates, share
// the key int64(5). The second result is false for values the map
// cannot key soundly — integral floats at or beyond ±2^53 (where float
// rounding makes ValueEq non-transitive across int64s) and
// non-basic-kind values (which may not even be comparable); callers
// must treat such values as potentially colliding with everything.
func MapKey(v Value) (Value, bool) {
	switch x := Norm(v).(type) {
	case nil:
		return nil, true
	case bool:
		return x, true
	case string:
		return x, true
	case int64:
		return x, true
	case float64:
		if math.IsNaN(x) {
			return NaNKey{}, true
		}
		if x == math.Trunc(x) {
			if x > -maxExactFloatKey && x < maxExactFloatKey {
				return int64(x), true
			}
			return nil, false
		}
		return x, true
	default:
		return nil, false
	}
}
