package core

// Implies is a sound (but deliberately incomplete) prover for logical
// implication a ⇒ b between commutativity conditions, used to order points
// of the commutativity lattice (§2.4). It proves exactly the shapes the
// paper's strengthening constructions produce:
//
//   - false ⇒ anything; anything ⇒ true
//   - structural equality (up to flattening, duplicates and symmetry)
//   - a1 ∨ a2 ⇒ b when both disjuncts imply b
//   - a ⇒ b1 ∨ b2 when a implies some disjunct
//   - a ⇒ b1 ∧ b2 when a implies every conjunct
//   - a1 ∧ a2 ⇒ b when some conjunct implies b (dropping clauses, as in
//     deriving figure 3 from figure 2)
//   - key(x) ≠ key(y) ⇒ x ≠ y for any function key (lock coarsening,
//     §4.2: equal elements have equal keys)
//   - ordering weakening between comparison leaves over the same
//     operands: x < y ⇒ x ≤ y, x < y ⇒ x ≠ y, x = y ⇒ x ≤ y (and the
//     flipped >/≥ spellings, which normalize onto these)
//   - equality congruence x = y ⇒ f(x) = f(y), the direct form of the
//     keyed refinement above
//
// A false result means "not proved", never "disproved"; tests back the
// prover with exhaustive finite-domain evaluation.
func Implies(a, b Cond) bool {
	return implies(Simplify(a), Simplify(b))
}

func implies(a, b Cond) bool {
	if _, ok := a.(FalseCond); ok {
		return true
	}
	if _, ok := b.(TrueCond); ok {
		return true
	}
	if condKey(a) == condKey(b) {
		return true
	}

	// Disjunctive antecedent: every disjunct must imply b.
	if ao, ok := a.(OrCond); ok {
		return implies(ao.L, b) && implies(ao.R, b)
	}
	// Conjunctive consequent: a must imply every conjunct.
	if ba, ok := b.(AndCond); ok {
		return implies(a, ba.L) && implies(a, ba.R)
	}
	// Disjunctive consequent: a implies some disjunct.
	if bo, ok := b.(OrCond); ok {
		if implies(a, bo.L) || implies(a, bo.R) {
			return true
		}
	}
	// Conjunctive antecedent: some conjunct implies b.
	if aa, ok := a.(AndCond); ok {
		if implies(aa.L, b) || implies(aa.R, b) {
			return true
		}
	}
	// Leaf-to-leaf comparison rules.
	if ac, ok := a.(CmpCond); ok {
		if bc, ok := b.(CmpCond); ok {
			if cmpImplies(ac, bc) {
				return true
			}
		}
	}
	return false
}

// cmpImplies proves implications between two comparison leaves:
//
//   - ordering weakening on identical operands: x < y ⇒ x ≤ y, x < y ⇒
//     x ≠ y, x = y ⇒ x ≤ y and x ≥ y (>/≥ normalize onto </≤ first, so
//     the flipped spellings are covered)
//   - equality congruence: x = y ⇒ f(x) = f(y) for a single-argument
//     function applied against the same state on both sides — the direct
//     form of the keyed refinement below, resting on the same assumption
//     (state functions are well-defined up to ValueEq)
//   - keyed disequality refinement: key(x) ≠ key(y) ⇒ x ≠ y
//
// The ordering rules are sound under L1's IEEE evaluation: < and = are
// false on unordered (NaN) operands, so a true antecedent pins both
// operands to ordered values and the weakened comparison follows. They
// assume the formula is well-typed (L1 defines < and ≤ only on
// arithmetic terms; on ill-typed operands both sides error out of Eval
// together).
func cmpImplies(a, b CmpCond) bool {
	a, b = canonCmp(a), canonCmp(b)
	al, ar := termKey(a.L), termKey(a.R)
	bl, br := termKey(b.L), termKey(b.R)
	same := al == bl && ar == br
	mirror := al == br && ar == bl
	switch {
	case a.Op == CmpLt && b.Op == CmpLe && same:
		return true // x < y ⇒ x ≤ y
	case a.Op == CmpLt && b.Op == CmpNe && (same || mirror):
		return true // x < y ⇒ x ≠ y
	case a.Op == CmpEq && b.Op == CmpLe && (same || mirror):
		return true // x = y ⇒ x ≤ y and y ≤ x
	case a.Op == CmpEq && b.Op == CmpEq && congruent(a, b):
		return true // x = y ⇒ f(x) = f(y)
	case a.Op == CmpNe && b.Op == CmpNe && keyedRefines(a, b):
		return true // key(x) ≠ key(y) ⇒ x ≠ y
	}
	return false
}

// canonCmp normalizes a comparison the way condKey does: > and ≥ flip
// into < and ≤, and the symmetric operators = and ≠ order their operands
// by term key.
func canonCmp(c CmpCond) CmpCond {
	switch c.Op {
	case CmpGt:
		return CmpCond{Op: CmpLt, L: c.R, R: c.L}
	case CmpGe:
		return CmpCond{Op: CmpLe, L: c.R, R: c.L}
	case CmpEq, CmpNe:
		if termKey(c.L) > termKey(c.R) {
			return CmpCond{Op: c.Op, L: c.R, R: c.L}
		}
	}
	return c
}

// congruent reports whether b is a with both operands wrapped in the
// same single-argument function evaluated against the same state side
// (in either operand order).
func congruent(a, b CmpCond) bool {
	lf, lok := b.L.(FnTerm)
	rf, rok := b.R.(FnTerm)
	if !lok || !rok || lf.Fn != rf.Fn || lf.State != rf.State ||
		len(lf.Args) != 1 || len(rf.Args) != 1 {
		return false
	}
	x, y := termKey(lf.Args[0]), termKey(rf.Args[0])
	al, ar := termKey(a.L), termKey(a.R)
	return (x == al && y == ar) || (x == ar && y == al)
}

// Equivalent reports whether the prover can show a and b logically
// equivalent (implication both ways). Like Implies it is sound but
// incomplete: a false result means "not proved equivalent", never
// "proved different". specvet uses it to check that explicitly stored
// mirror conditions really are the side-swap of each other.
func Equivalent(a, b Cond) bool {
	as, bs := Simplify(a), Simplify(b)
	return implies(as, bs) && implies(bs, as)
}

// keyedRefines reports whether a is b with both operands wrapped in the
// same single-argument function (in either operand order).
func keyedRefines(a, b CmpCond) bool {
	lf, lok := a.L.(FnTerm)
	rf, rok := a.R.(FnTerm)
	if !lok || !rok || lf.Fn != rf.Fn || len(lf.Args) != 1 || len(rf.Args) != 1 {
		return false
	}
	x, y := termKey(lf.Args[0]), termKey(rf.Args[0])
	bl, br := termKey(b.L), termKey(b.R)
	return (x == bl && y == br) || (x == br && y == bl)
}
