package core

// Implies is a sound (but deliberately incomplete) prover for logical
// implication a ⇒ b between commutativity conditions, used to order points
// of the commutativity lattice (§2.4). It proves exactly the shapes the
// paper's strengthening constructions produce:
//
//   - false ⇒ anything; anything ⇒ true
//   - structural equality (up to flattening, duplicates and symmetry)
//   - a1 ∨ a2 ⇒ b when both disjuncts imply b
//   - a ⇒ b1 ∨ b2 when a implies some disjunct
//   - a ⇒ b1 ∧ b2 when a implies every conjunct
//   - a1 ∧ a2 ⇒ b when some conjunct implies b (dropping clauses, as in
//     deriving figure 3 from figure 2)
//   - key(x) ≠ key(y) ⇒ x ≠ y for any function key (lock coarsening,
//     §4.2: equal elements have equal keys)
//
// A false result means "not proved", never "disproved"; tests back the
// prover with exhaustive finite-domain evaluation.
func Implies(a, b Cond) bool {
	return implies(Simplify(a), Simplify(b))
}

func implies(a, b Cond) bool {
	if _, ok := a.(FalseCond); ok {
		return true
	}
	if _, ok := b.(TrueCond); ok {
		return true
	}
	if condKey(a) == condKey(b) {
		return true
	}

	// Disjunctive antecedent: every disjunct must imply b.
	if ao, ok := a.(OrCond); ok {
		return implies(ao.L, b) && implies(ao.R, b)
	}
	// Conjunctive consequent: a must imply every conjunct.
	if ba, ok := b.(AndCond); ok {
		return implies(a, ba.L) && implies(a, ba.R)
	}
	// Disjunctive consequent: a implies some disjunct.
	if bo, ok := b.(OrCond); ok {
		if implies(a, bo.L) || implies(a, bo.R) {
			return true
		}
	}
	// Conjunctive antecedent: some conjunct implies b.
	if aa, ok := a.(AndCond); ok {
		if implies(aa.L, b) || implies(aa.R, b) {
			return true
		}
	}
	// Keyed disequality refinement: key(x) ≠ key(y) ⇒ x ≠ y.
	if ac, ok := a.(CmpCond); ok {
		if bc, ok := b.(CmpCond); ok && ac.Op == CmpNe && bc.Op == CmpNe {
			if keyedRefines(ac, bc) {
				return true
			}
		}
	}
	return false
}

// keyedRefines reports whether a is b with both operands wrapped in the
// same single-argument function (in either operand order).
func keyedRefines(a, b CmpCond) bool {
	lf, lok := a.L.(FnTerm)
	rf, rok := a.R.(FnTerm)
	if !lok || !rok || lf.Fn != rf.Fn || len(lf.Args) != 1 || len(rf.Args) != 1 {
		return false
	}
	x, y := termKey(lf.Args[0]), termKey(rf.Args[0])
	bl, br := termKey(b.L), termKey(b.R)
	return (x == bl && y == br) || (x == br && y == bl)
}
