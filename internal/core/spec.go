package core

import (
	"fmt"
	"sort"
	"strings"
)

// MethodSig describes one method of an abstract data type: its name, the
// names of its parameters (used for readable lock-mode names) and whether
// it returns a value.
type MethodSig struct {
	Name   string
	Params []string
	HasRet bool
}

// ADTSig is the signature of an abstract data type: its name and methods.
type ADTSig struct {
	Name    string
	Methods []MethodSig
}

// Method returns the signature of the named method.
func (s *ADTSig) Method(name string) (MethodSig, bool) {
	for _, m := range s.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return MethodSig{}, false
}

// MethodNames returns the method names in declaration order.
func (s *ADTSig) MethodNames() []string {
	out := make([]string, len(s.Methods))
	for i, m := range s.Methods {
		out[i] = m.Name
	}
	return out
}

type pairKey struct{ m1, m2 string }

// Spec is a commutativity specification: one condition per unordered pair
// of methods of an ADT (§2.3). Conditions are stored for ordered pairs;
// the symmetric condition for the reversed pair is derived by swapping
// sides, per the paper's footnote 5. Pairs never Set default to false,
// the conservative bottom condition.
type Spec struct {
	Sig   *ADTSig
	Pure  map[string]bool // state-independent helper functions (dist, part, ...)
	conds map[pairKey]Cond
	// oriented marks unordered pairs whose stored condition is
	// intentionally orientation-sensitive in form: either a genuinely
	// directed override (kd-tree remove~nearest) or a self-pair whose
	// helpers are conventionally evaluated in one state (union-find's
	// union~union). specvet requires the declaration before accepting a
	// stored condition that is not provably symmetric under SwapSides.
	oriented map[pairKey]bool
}

// NewSpec creates an empty (all-false) specification over sig.
func NewSpec(sig *ADTSig) *Spec {
	return &Spec{Sig: sig, Pure: map[string]bool{}, conds: map[pairKey]Cond{}}
}

// DeclarePure marks helper function names as state-independent; pure
// functions around slots keep a condition SIMPLE-implementable via keyed
// (partition) locks.
func (s *Spec) DeclarePure(fns ...string) *Spec {
	for _, f := range fns {
		s.Pure[f] = true
	}
	return s
}

// Set records the commutativity condition for the ordered pair (m1, m2).
// Unless overridden, the condition for (m2, m1) is derived automatically
// by SwapSides, per the paper's footnote 5; in that case the author must
// supply a condition valid in *both* orientations (both-moving
// commutativity). When the mirrored orientation needs a genuinely
// different formula (the kd-tree's remove~nearest does), call Set again
// with the arguments reversed: an explicitly stored direction always wins
// over the swap-derived one. The brute-force checker CheckCondSound
// exercises both orders and catches conditions valid only one way.
// Self-pair (m, m) conditions may be orientation-sensitive in form
// (union-find's union~union evaluates its helpers in s1) as long as they
// are semantically valid either way.
func (s *Spec) Set(m1, m2 string, c Cond) *Spec {
	s.mustHave(m1)
	s.mustHave(m2)
	s.conds[pairKey{m1, m2}] = Simplify(c)
	return s
}

// SetOriented declares the unordered pair {m1, m2} orientation-sensitive:
// its stored condition is not expected to be symmetric under SwapSides.
// The declaration is what lets specvet distinguish a deliberate directed
// override from an author who forgot footnote 5 and wrote a one-sided
// formula.
func (s *Spec) SetOriented(m1, m2 string) *Spec {
	s.mustHave(m1)
	s.mustHave(m2)
	if s.oriented == nil {
		s.oriented = map[pairKey]bool{}
	}
	s.oriented[orientKey(m1, m2)] = true
	return s
}

// IsOriented reports whether {m1, m2} was declared orientation-sensitive.
func (s *Spec) IsOriented(m1, m2 string) bool {
	return s.oriented[orientKey(m1, m2)]
}

// OrientedPairs returns the declared orientation-sensitive pairs in
// canonical (lexicographic) order.
func (s *Spec) OrientedPairs() [][2]string {
	out := make([][2]string, 0, len(s.oriented))
	for k := range s.oriented {
		out = append(out, [2]string{k.m1, k.m2})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// orientKey canonicalizes an unordered pair for the oriented set.
func orientKey(m1, m2 string) pairKey {
	if m2 < m1 {
		m1, m2 = m2, m1
	}
	return pairKey{m1, m2}
}

// StoredPairs returns the ordered pairs that have an explicitly stored
// condition (no swap-derivation, no false default), in canonical order.
// Static spec verification iterates exactly these: they are the formulas
// an author actually wrote.
func (s *Spec) StoredPairs() [][2]string {
	out := make([][2]string, 0, len(s.conds))
	for k := range s.conds {
		out = append(out, [2]string{k.m1, k.m2})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// StoredCond returns the explicitly stored condition for the ordered
// pair (m1, m2), with no swap-derived or default fallback.
func (s *Spec) StoredCond(m1, m2 string) (Cond, bool) {
	c, ok := s.conds[pairKey{m1, m2}]
	return c, ok
}

func (s *Spec) mustHave(m string) {
	if _, ok := s.Sig.Method(m); !ok {
		panic(fmt.Sprintf("core: ADT %s has no method %s", s.Sig.Name, m))
	}
}

// Cond returns the commutativity condition for the ordered pair (m1, m2):
// the stored condition, the swapped stored condition for (m2, m1), or
// false if neither was set.
func (s *Spec) Cond(m1, m2 string) Cond {
	if c, ok := s.conds[pairKey{m1, m2}]; ok {
		return c
	}
	if c, ok := s.conds[pairKey{m2, m1}]; ok {
		return SwapSides(c)
	}
	return FalseCond{}
}

// Pairs returns every ordered method pair (m1, m2) with m1 ≤ m2 in
// declaration order, which together with symmetry covers the whole spec.
func (s *Spec) Pairs() [][2]string {
	var out [][2]string
	names := s.Sig.MethodNames()
	for i, a := range names {
		for _, b := range names[i:] {
			out = append(out, [2]string{a, b})
		}
	}
	return out
}

// OrderedPairs returns all n² ordered method pairs. Lattice operations
// iterate these so that directed condition overrides (a stored (m2, m1)
// that is not the swap of (m1, m2)) are preserved.
func (s *Spec) OrderedPairs() [][2]string {
	var out [][2]string
	names := s.Sig.MethodNames()
	for _, a := range names {
		for _, b := range names {
			out = append(out, [2]string{a, b})
		}
	}
	return out
}

// Classify returns the class of the whole specification: the least
// restrictive class among its pair conditions.
func (s *Spec) Classify() Class {
	worst := ClassSimple
	for _, p := range s.OrderedPairs() {
		if c := ClassifyWith(s.Cond(p[0], p[1]), s.Pure); c > worst {
			worst = c
		}
	}
	return worst
}

// Clone returns a deep-enough copy of the spec (conditions are immutable).
func (s *Spec) Clone() *Spec {
	out := NewSpec(s.Sig)
	for f := range s.Pure {
		out.Pure[f] = true
	}
	for k, v := range s.conds {
		out.conds[k] = v
	}
	for k := range s.oriented {
		if out.oriented == nil {
			out.oriented = map[pairKey]bool{}
		}
		out.oriented[k] = true
	}
	return out
}

// Meet returns the greatest lower bound of two specifications over the
// same signature: the pointwise conjunction of their conditions (§2.4).
func (s *Spec) Meet(t *Spec) *Spec {
	return s.combine(t, func(a, b Cond) Cond { return And(a, b) })
}

// Join returns the least upper bound: the pointwise disjunction.
func (s *Spec) Join(t *Spec) *Spec {
	return s.combine(t, func(a, b Cond) Cond { return Or(a, b) })
}

func (s *Spec) combine(t *Spec, f func(a, b Cond) Cond) *Spec {
	if s.Sig != t.Sig && s.Sig.Name != t.Sig.Name {
		panic("core: lattice operation over different ADTs")
	}
	out := NewSpec(s.Sig)
	for fn := range s.Pure {
		out.Pure[fn] = true
	}
	for fn := range t.Pure {
		out.Pure[fn] = true
	}
	for _, p := range s.OrderedPairs() {
		out.Set(p[0], p[1], Simplify(f(s.Cond(p[0], p[1]), t.Cond(p[0], p[1]))))
	}
	return out
}

// LE reports whether s ≤ t in the commutativity lattice, i.e. every
// condition of s implies the corresponding condition of t. The underlying
// prover is sound but not complete: a true result is trustworthy, a false
// result means "not proved".
func (s *Spec) LE(t *Spec) bool {
	for _, p := range s.OrderedPairs() {
		if !Implies(s.Cond(p[0], p[1]), t.Cond(p[0], p[1])) {
			return false
		}
	}
	return true
}

// Bottom is the ⊥ specification for sig: no two invocations ever commute.
// Its synthesized abstract-locking implementation is a single global
// exclusive lock (§4.1).
func Bottom(sig *ADTSig) *Spec {
	s := NewSpec(sig)
	for _, p := range s.Pairs() {
		s.Set(p[0], p[1], False())
	}
	return s
}

// String renders the specification one condition per pair, in the style
// of the paper's figures.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s:\n", s.Sig.Name)
	for _, p := range s.Pairs() {
		fmt.Fprintf(&b, "  %s ~ %s  if  %s\n", p[0], p[1], s.Cond(p[0], p[1]))
	}
	return b.String()
}

// PartitionSpec strengthens a SIMPLE specification by replacing every
// slot disequality `x ≠ y` with `key(x) ≠ key(y)` (§4.2, disciplined lock
// coarsening). Since key(x) ≠ key(y) implies x ≠ y, the result is lower
// in the lattice; its synthesized locking scheme locks partitions instead
// of elements. The key function must be registered as pure.
func (s *Spec) PartitionSpec(key string) (*Spec, error) {
	out := NewSpec(s.Sig)
	for f := range s.Pure {
		out.Pure[f] = true
	}
	out.Pure[key] = true
	for _, p := range s.Pairs() {
		c := s.Cond(p[0], p[1])
		form, ok := AsSimple(c, nil)
		if !ok {
			return nil, fmt.Errorf("core: condition for (%s,%s) is not SIMPLE: %s", p[0], p[1], c)
		}
		out.Set(p[0], p[1], partitionCond(form, key))
	}
	return out, nil
}

func partitionCond(form *SimpleForm, key string) Cond {
	switch form.Kind {
	case SimpleTrue:
		return True()
	case SimpleFalse:
		return False()
	}
	parts := make([]Cond, len(form.Conjuncts))
	for i, cj := range form.Conjuncts {
		parts[i] = Ne(
			FnTerm{Fn: key, State: First, Args: []Term{slotTerm(cj.X, First)}},
			FnTerm{Fn: key, State: Second, Args: []Term{slotTerm(cj.Y, Second)}},
		)
	}
	return And(parts...)
}

func slotTerm(s SlotRef, side Side) Term {
	if s.IsRet {
		return RetTerm{Side: side}
	}
	return ArgTerm{Side: side, Index: s.Arg}
}
