package core

import (
	"math"
	"testing"
)

func TestNormIntegers(t *testing.T) {
	cases := []any{int(7), int8(7), int16(7), int32(7), int64(7), uint(7), uint8(7), uint16(7), uint32(7), uint64(7)}
	for _, c := range cases {
		if got := V(c); got != VInt(7) {
			t.Errorf("V(%T %v) = %v, want int 7", c, c, got)
		}
	}
}

func TestNormFloats(t *testing.T) {
	if got := V(float32(1.5)); got != VFloat(1.5) {
		t.Errorf("V(float32 1.5) = %v", got)
	}
	if got := V(2.25); got != VFloat(2.25) {
		t.Errorf("V(float64) changed value: %v", got)
	}
}

func TestNormPassthrough(t *testing.T) {
	if got := V("abc"); got != VString("abc") {
		t.Errorf("V(string) = %v", got)
	}
	if got := V(true); got != VBool(true) {
		t.Errorf("V(bool) = %v", got)
	}
	if got := V(nil); !got.IsNil() {
		t.Errorf("V(nil) = %v", got)
	}
	if got := V(VInt(3)); got != VInt(3) {
		t.Errorf("V(Value) must pass through: %v", got)
	}
}

func TestTaggedAccessors(t *testing.T) {
	if VInt(-9).Int() != -9 {
		t.Error("Int round trip")
	}
	if VFloat(1.25).Float() != 1.25 {
		t.Error("Float round trip")
	}
	if !VBool(true).Bool() || VBool(false).Bool() {
		t.Error("Bool round trip")
	}
	if VString("xy").Str() != "xy" {
		t.Error("Str round trip")
	}
	type node struct{ id int }
	n := node{7}
	if V(n).Ref().(node) != n {
		t.Error("Ref round trip")
	}
	if _, ok := VInt(1).AsBool(); ok {
		t.Error("AsBool on int must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("Int() on a bool must panic like a failed type assertion")
		}
	}()
	VBool(true).Int()
}

func TestUnbox(t *testing.T) {
	cases := []struct {
		v    Value
		want any
	}{
		{Nil(), nil},
		{VBool(true), true},
		{VInt(5), int64(5)},
		{VFloat(2.5), 2.5},
		{VString("s"), "s"},
	}
	for _, c := range cases {
		if got := c.v.Unbox(); got != c.want {
			t.Errorf("Unbox(%v) = %v (%T), want %v", c.v, got, got, c.want)
		}
	}
}

func TestValueEq(t *testing.T) {
	cases := []struct {
		a, b any
		want bool
	}{
		{1, 1, true},
		{1, 2, false},
		{int8(3), uint64(3), true},
		{1, 1.0, true},
		{1.5, 1.5, true},
		{1.5, 1, false},
		{"a", "a", true},
		{"a", "b", false},
		{true, true, true},
		{true, false, false},
		{nil, nil, true},
		{nil, 0, false},
		{"1", 1, false},
		{math.NaN(), math.NaN(), false},
		{0.0, math.Copysign(0, -1), true},
	}
	for _, c := range cases {
		if got := ValueEq(V(c.a), V(c.b)); got != c.want {
			t.Errorf("ValueEq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if ValueEq(Unset(), Unset()) {
		t.Error("unset sentinel must be unequal to itself")
	}
}

func TestValueLess(t *testing.T) {
	lt, err := valueLess(VInt(1), VFloat(2.5))
	if err != nil || !lt {
		t.Errorf("valueLess(1, 2.5) = %v, %v", lt, err)
	}
	lt, err = valueLess(VInt(3), VInt(3))
	if err != nil || lt {
		t.Errorf("valueLess(3, 3) = %v, %v", lt, err)
	}
	if _, err = valueLess(VString("a"), VInt(1)); err == nil {
		t.Error("valueLess on string should error")
	}
}

func TestCompare(t *testing.T) {
	if c, err := Compare(VInt(1), VFloat(1.0)); err != nil || c != 0 {
		t.Errorf("Compare(1, 1.0) = %d, %v", c, err)
	}
	if c, _ := Compare(VFloat(-1), VInt(3)); c != -1 {
		t.Errorf("Compare(-1, 3) = %d", c)
	}
	if c, _ := Compare(VInt(3), VFloat(-1)); c != 1 {
		t.Errorf("Compare(3, -1) = %d", c)
	}
	// NaN is unordered: Compare reports 0 but ValueEq is false, matching
	// IEEE semantics where <, > and = are all false.
	if c, err := Compare(VFloat(math.NaN()), VInt(1)); err != nil || c != 0 {
		t.Errorf("Compare(NaN, 1) = %d, %v", c, err)
	}
	if _, err := Compare(VBool(true), VInt(1)); err == nil {
		t.Error("Compare on bool should error")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b any
		want any
	}{
		{OpAdd, 2, 3, int64(5)},
		{OpSub, 2, 3, int64(-1)},
		{OpMul, 2, 3, int64(6)},
		{OpAdd, 2.5, 3, 5.5},
		{OpDiv, 7, 2, 3.5},
		{OpMul, 2.0, 3.0, 6.0},
	}
	for _, c := range cases {
		got, err := arith(c.op, V(c.a), V(c.b))
		if err != nil {
			t.Fatalf("arith(%v, %v, %v): %v", c.op, c.a, c.b, err)
		}
		if !ValueEq(got, V(c.want)) {
			t.Errorf("arith(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	// Integer ops stay integral (so MapKey canonicalization is exact).
	if got, _ := arith(OpAdd, VInt(2), VInt(3)); got.Kind() != KindInt {
		t.Errorf("int+int should stay int, got %v", got.Kind())
	}
}

func TestArithDivByZero(t *testing.T) {
	got, err := arith(OpDiv, VInt(1), VInt(0))
	if err != nil {
		t.Fatalf("div by zero errored: %v", err)
	}
	if !math.IsInf(got.Float(), 1) {
		t.Errorf("1/0 = %v, want +Inf", got)
	}
	got, err = arith(OpDiv, VInt(-1), VInt(0))
	if err != nil {
		t.Fatalf("-1/0 errored: %v", err)
	}
	if !math.IsInf(got.Float(), -1) {
		t.Errorf("-1/0 = %v, want -Inf", got)
	}
	got, err = arith(OpDiv, VFloat(-2.5), VFloat(0.0))
	if err != nil {
		t.Fatalf("-2.5/0 errored: %v", err)
	}
	if !math.IsInf(got.Float(), -1) {
		t.Errorf("-2.5/0 = %v, want -Inf", got)
	}
	got, err = arith(OpDiv, VInt(0), VInt(0))
	if err != nil {
		t.Fatalf("0/0 errored: %v", err)
	}
	if !math.IsNaN(got.Float()) {
		t.Errorf("0/0 = %v, want NaN", got)
	}
}

func TestMapKeyCanonicalizesCrossTypeEquality(t *testing.T) {
	ka, aok := MapKey(VInt(5))
	kb, bok := MapKey(VFloat(5.0))
	if !aok || !bok || ka != kb {
		t.Fatalf("int 5 and float 5.0 must share a key: %v/%v (%v/%v)", ka, kb, aok, bok)
	}
	if ka != VInt(5) {
		t.Fatalf("canonical key for 5 should be the int value, got %v", ka)
	}
	// Norm kinds collapse too.
	ki, _ := MapKey(V(int8(5)))
	if ki != ka {
		t.Fatalf("int8(5) key %v differs from int64(5) key %v", ki, ka)
	}
}

func TestMapKeyConsistentWithValueEq(t *testing.T) {
	vals := []Value{
		VInt(0), VInt(5), VInt(-3), VFloat(5), VFloat(5.5),
		VFloat(-3), VString("a"), VString("b"), VBool(true), VBool(false),
		Nil(), VFloat(0), VFloat(math.Copysign(0, -1)),
	}
	for _, a := range vals {
		for _, b := range vals {
			ka, aok := MapKey(a)
			kb, bok := MapKey(b)
			if !aok || !bok {
				t.Fatalf("basic value unkeyable: %v %v", a, b)
			}
			if ValueEq(a, b) && ka != kb {
				t.Errorf("ValueEq(%v, %v) but keys %v != %v", a, b, ka, kb)
			}
			if ka == kb && !ValueEq(a, b) {
				t.Errorf("keys collide for unequal %v, %v", a, b)
			}
		}
	}
}

func TestMapKeyNaN(t *testing.T) {
	k, ok := MapKey(VFloat(math.NaN()))
	if !ok {
		t.Fatalf("NaN must be keyable")
	}
	if k.Kind() != KindNaN {
		t.Fatalf("NaN key = %v, want the canonical KindNaN key", k)
	}
	k2, _ := MapKey(VFloat(math.Float64frombits(0x7ff8000000000001))) // a different NaN payload
	if k != k2 {
		t.Fatalf("all NaNs must share one key")
	}
}

func TestMapKeyRejectsHugeIntegralFloats(t *testing.T) {
	// Beyond ±2^53 float rounding makes ValueEq non-transitive across
	// int64s, so integral floats there must be unkeyable. int64 values
	// of any magnitude stay keyable (int64 keys never collide).
	if _, ok := MapKey(VFloat(1 << 53)); ok {
		t.Errorf("float64(2^53) must be unkeyable")
	}
	if _, ok := MapKey(VFloat(-(1 << 53))); ok {
		t.Errorf("float64(-2^53) must be unkeyable")
	}
	if _, ok := MapKey(VFloat(math.Inf(1))); ok {
		t.Errorf("+Inf is integral-and-huge, must be unkeyable")
	}
	if k, ok := MapKey(VFloat(1<<53 - 1)); !ok || k != VInt(1<<53-1) {
		t.Errorf("float64(2^53-1) should key as int: %v %v", k, ok)
	}
	if k, ok := MapKey(VInt(1 << 60)); !ok || k != VInt(1<<60) {
		t.Errorf("large int should stay keyable: %v %v", k, ok)
	}
}

func TestMapKeyRejectsNonBasicKinds(t *testing.T) {
	type pt struct{ x, y int }
	if _, ok := MapKey(V(pt{1, 2})); ok {
		t.Errorf("struct values must be unkeyable")
	}
	if _, ok := MapKey(V([]int{1})); ok {
		t.Errorf("non-comparable values must be unkeyable")
	}
	if _, ok := MapKey(Unset()); ok {
		t.Errorf("the unset sentinel must be unkeyable")
	}
}

func TestArithNonNumeric(t *testing.T) {
	if _, err := arith(OpAdd, VString("a"), VInt(1)); err == nil {
		t.Error("arith on string should error")
	}
}

func TestHashConsistentWithMapKey(t *testing.T) {
	pairs := [][2]Value{
		{VInt(5), VFloat(5.0)},
		{VFloat(math.NaN()), VFloat(math.Float64frombits(0x7ff8000000000001))},
		{VFloat(0), VFloat(math.Copysign(0, -1))},
		{VString("abc"), V("abc")},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Hash(%v) != Hash(%v) though MapKeys agree", p[0], p[1])
		}
	}
	if VInt(1).Hash() == VInt(2).Hash() {
		t.Error("suspicious hash collision on small ints")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Nil(), "<nil>"},
		{VBool(true), "true"},
		{VInt(-3), "-3"},
		{VFloat(2.5), "2.5"},
		{VFloat(5), "5"},
		{VString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestVecInlineAndSpill(t *testing.T) {
	v := MakeVec(VInt(1), VInt(2), VInt(3))
	if v.Len() != 3 || v.At(2) != VInt(3) {
		t.Fatalf("inline vec broken: %v", v.String())
	}
	if v.String() != "[1 2 3]" {
		t.Errorf("Vec.String = %q", v.String())
	}
	// Spill past MaxInlineArgs.
	for i := 4; i <= 6; i++ {
		v.Append(VInt(int64(i * 10)))
	}
	if v.Len() != 6 || v.At(0) != VInt(1) || v.At(5) != VInt(60) {
		t.Fatalf("spilled vec broken: %v", v.String())
	}
	s := v.Slice()
	if len(s) != 6 || s[3] != VInt(40) {
		t.Fatalf("Slice view broken: %v", s)
	}
	v.Release()
	if v.Len() != 0 {
		t.Error("Release must reset the vec")
	}
}

func TestVecReleaseClearsRefs(t *testing.T) {
	type big struct{ p *int }
	x := 7
	v := Args2(V(big{&x}), VInt(1))
	v.Release()
	for i := 0; i < MaxInlineArgs; i++ {
		if v.inline[i] != (Value{}) {
			t.Fatalf("slot %d retains %v after Release", i, v.inline[i])
		}
	}
}
