package core

import (
	"math"
	"testing"
)

func TestNormIntegers(t *testing.T) {
	cases := []Value{int(7), int8(7), int16(7), int32(7), int64(7), uint(7), uint8(7), uint16(7), uint32(7), uint64(7)}
	for _, c := range cases {
		if got := Norm(c); got != int64(7) {
			t.Errorf("Norm(%T %v) = %v (%T), want int64 7", c, c, got, got)
		}
	}
}

func TestNormFloats(t *testing.T) {
	if got := Norm(float32(1.5)); got != float64(1.5) {
		t.Errorf("Norm(float32 1.5) = %v", got)
	}
	if got := Norm(2.25); got != 2.25 {
		t.Errorf("Norm(float64) changed value: %v", got)
	}
}

func TestNormPassthrough(t *testing.T) {
	if got := Norm("abc"); got != "abc" {
		t.Errorf("Norm(string) = %v", got)
	}
	if got := Norm(true); got != true {
		t.Errorf("Norm(bool) = %v", got)
	}
	if got := Norm(nil); got != nil {
		t.Errorf("Norm(nil) = %v", got)
	}
}

func TestValueEq(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{1, 1, true},
		{1, 2, false},
		{int8(3), uint64(3), true},
		{1, 1.0, true},
		{1.5, 1.5, true},
		{1.5, 1, false},
		{"a", "a", true},
		{"a", "b", false},
		{true, true, true},
		{true, false, false},
		{nil, nil, true},
		{nil, 0, false},
		{"1", 1, false},
	}
	for _, c := range cases {
		if got := ValueEq(c.a, c.b); got != c.want {
			t.Errorf("ValueEq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueLess(t *testing.T) {
	lt, err := valueLess(1, 2.5)
	if err != nil || !lt {
		t.Errorf("valueLess(1, 2.5) = %v, %v", lt, err)
	}
	lt, err = valueLess(3, 3)
	if err != nil || lt {
		t.Errorf("valueLess(3, 3) = %v, %v", lt, err)
	}
	if _, err = valueLess("a", 1); err == nil {
		t.Error("valueLess on string should error")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b Value
		want Value
	}{
		{OpAdd, 2, 3, int64(5)},
		{OpSub, 2, 3, int64(-1)},
		{OpMul, 2, 3, int64(6)},
		{OpAdd, 2.5, 3, 5.5},
		{OpDiv, 7, 2, 3.5},
		{OpMul, 2.0, 3.0, 6.0},
	}
	for _, c := range cases {
		got, err := arith(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("arith(%v, %v, %v): %v", c.op, c.a, c.b, err)
		}
		if !ValueEq(got, c.want) {
			t.Errorf("arith(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestArithDivByZero(t *testing.T) {
	got, err := arith(OpDiv, 1, 0)
	if err != nil {
		t.Fatalf("div by zero errored: %v", err)
	}
	if !math.IsInf(got.(float64), 1) {
		t.Errorf("1/0 = %v, want +Inf", got)
	}
}

func TestArithNonNumeric(t *testing.T) {
	if _, err := arith(OpAdd, "a", 1); err == nil {
		t.Error("arith on string should error")
	}
}
