package core

import (
	"math"
	"testing"
)

func TestNormIntegers(t *testing.T) {
	cases := []Value{int(7), int8(7), int16(7), int32(7), int64(7), uint(7), uint8(7), uint16(7), uint32(7), uint64(7)}
	for _, c := range cases {
		if got := Norm(c); got != int64(7) {
			t.Errorf("Norm(%T %v) = %v (%T), want int64 7", c, c, got, got)
		}
	}
}

func TestNormFloats(t *testing.T) {
	if got := Norm(float32(1.5)); got != float64(1.5) {
		t.Errorf("Norm(float32 1.5) = %v", got)
	}
	if got := Norm(2.25); got != 2.25 {
		t.Errorf("Norm(float64) changed value: %v", got)
	}
}

func TestNormPassthrough(t *testing.T) {
	if got := Norm("abc"); got != "abc" {
		t.Errorf("Norm(string) = %v", got)
	}
	if got := Norm(true); got != true {
		t.Errorf("Norm(bool) = %v", got)
	}
	if got := Norm(nil); got != nil {
		t.Errorf("Norm(nil) = %v", got)
	}
}

func TestValueEq(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{1, 1, true},
		{1, 2, false},
		{int8(3), uint64(3), true},
		{1, 1.0, true},
		{1.5, 1.5, true},
		{1.5, 1, false},
		{"a", "a", true},
		{"a", "b", false},
		{true, true, true},
		{true, false, false},
		{nil, nil, true},
		{nil, 0, false},
		{"1", 1, false},
	}
	for _, c := range cases {
		if got := ValueEq(c.a, c.b); got != c.want {
			t.Errorf("ValueEq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueLess(t *testing.T) {
	lt, err := valueLess(1, 2.5)
	if err != nil || !lt {
		t.Errorf("valueLess(1, 2.5) = %v, %v", lt, err)
	}
	lt, err = valueLess(3, 3)
	if err != nil || lt {
		t.Errorf("valueLess(3, 3) = %v, %v", lt, err)
	}
	if _, err = valueLess("a", 1); err == nil {
		t.Error("valueLess on string should error")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b Value
		want Value
	}{
		{OpAdd, 2, 3, int64(5)},
		{OpSub, 2, 3, int64(-1)},
		{OpMul, 2, 3, int64(6)},
		{OpAdd, 2.5, 3, 5.5},
		{OpDiv, 7, 2, 3.5},
		{OpMul, 2.0, 3.0, 6.0},
	}
	for _, c := range cases {
		got, err := arith(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("arith(%v, %v, %v): %v", c.op, c.a, c.b, err)
		}
		if !ValueEq(got, c.want) {
			t.Errorf("arith(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestArithDivByZero(t *testing.T) {
	got, err := arith(OpDiv, 1, 0)
	if err != nil {
		t.Fatalf("div by zero errored: %v", err)
	}
	if !math.IsInf(got.(float64), 1) {
		t.Errorf("1/0 = %v, want +Inf", got)
	}
	got, err = arith(OpDiv, -1, 0)
	if err != nil {
		t.Fatalf("-1/0 errored: %v", err)
	}
	if !math.IsInf(got.(float64), -1) {
		t.Errorf("-1/0 = %v, want -Inf", got)
	}
	got, err = arith(OpDiv, -2.5, 0.0)
	if err != nil {
		t.Fatalf("-2.5/0 errored: %v", err)
	}
	if !math.IsInf(got.(float64), -1) {
		t.Errorf("-2.5/0 = %v, want -Inf", got)
	}
	got, err = arith(OpDiv, 0, 0)
	if err != nil {
		t.Fatalf("0/0 errored: %v", err)
	}
	if !math.IsNaN(got.(float64)) {
		t.Errorf("0/0 = %v, want NaN", got)
	}
}

func TestMapKeyCanonicalizesCrossTypeEquality(t *testing.T) {
	ka, aok := MapKey(int64(5))
	kb, bok := MapKey(float64(5.0))
	if !aok || !bok || ka != kb {
		t.Fatalf("int64(5) and float64(5.0) must share a key: %v/%v (%v/%v)", ka, kb, aok, bok)
	}
	if ka != int64(5) {
		t.Fatalf("canonical key for 5 should be int64, got %T %v", ka, ka)
	}
	// Norm kinds collapse too.
	ki, _ := MapKey(int8(5))
	if ki != ka {
		t.Fatalf("int8(5) key %v differs from int64(5) key %v", ki, ka)
	}
}

func TestMapKeyConsistentWithValueEq(t *testing.T) {
	vals := []Value{
		int64(0), int64(5), int64(-3), float64(5), float64(5.5),
		float64(-3), "a", "b", true, false, nil, float64(0),
	}
	for _, a := range vals {
		for _, b := range vals {
			ka, aok := MapKey(a)
			kb, bok := MapKey(b)
			if !aok || !bok {
				t.Fatalf("basic value unkeyable: %v %v", a, b)
			}
			if ValueEq(a, b) && ka != kb {
				t.Errorf("ValueEq(%v, %v) but keys %v != %v", a, b, ka, kb)
			}
			if ka == kb && !ValueEq(a, b) {
				t.Errorf("keys collide for unequal %v, %v", a, b)
			}
		}
	}
}

func TestMapKeyNaN(t *testing.T) {
	k, ok := MapKey(math.NaN())
	if !ok {
		t.Fatalf("NaN must be keyable")
	}
	if _, isNaN := k.(NaNKey); !isNaN {
		t.Fatalf("NaN key = %T %v, want NaNKey", k, k)
	}
	k2, _ := MapKey(math.Float64frombits(0x7ff8000000000001)) // a different NaN payload
	if k != k2 {
		t.Fatalf("all NaNs must share one key")
	}
}

func TestMapKeyRejectsHugeIntegralFloats(t *testing.T) {
	// Beyond ±2^53 float rounding makes ValueEq non-transitive across
	// int64s, so integral floats there must be unkeyable. int64 values
	// of any magnitude stay keyable (int64 keys never collide).
	if _, ok := MapKey(float64(1 << 53)); ok {
		t.Errorf("float64(2^53) must be unkeyable")
	}
	if _, ok := MapKey(-float64(1 << 53)); ok {
		t.Errorf("float64(-2^53) must be unkeyable")
	}
	if _, ok := MapKey(math.Inf(1)); ok {
		t.Errorf("+Inf is integral-and-huge, must be unkeyable")
	}
	if k, ok := MapKey(float64(1<<53) - 1); !ok || k != int64(1<<53-1) {
		t.Errorf("float64(2^53-1) should key as int64: %v %v", k, ok)
	}
	if k, ok := MapKey(int64(1) << 60); !ok || k != int64(1)<<60 {
		t.Errorf("large int64 should stay keyable: %v %v", k, ok)
	}
}

func TestMapKeyRejectsNonBasicKinds(t *testing.T) {
	type pt struct{ x, y int }
	if _, ok := MapKey(pt{1, 2}); ok {
		t.Errorf("struct values must be unkeyable")
	}
	if _, ok := MapKey([]int{1}); ok {
		t.Errorf("non-comparable values must be unkeyable")
	}
}

func TestArithNonNumeric(t *testing.T) {
	if _, err := arith(OpAdd, "a", 1); err == nil {
		t.Error("arith on string should error")
	}
}
