package core

import "testing"

func TestSubstTermsReplacesLogged(t *testing.T) {
	// dist(s1; v1, r1) replaced by a logged constant.
	ft := Fn1("dist", Arg1(0), Ret1())
	c := Gt(Fn2("dist", Arg1(0), Arg2(0)), ft)
	sub := map[string]Value{TermKey(ft): VFloat(4)}
	got := SubstTerms(c, sub)
	env := &PairEnv{
		Inv1: NewInvocation("nearest", []Value{VInt(0)}, VInt(9)),
		Inv2: NewInvocation("add", []Value{VInt(5)}, VBool(true)),
		S2: func(fn string, args []Value) (Value, error) {
			// Live dist: |a-b| squared-ish; here simply 25.
			return VFloat(25), nil
		},
	}
	ok, err := Eval(got, env)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("25 > 4 should hold after substitution")
	}
	// Without substitution the S1 resolver is missing and Eval errors.
	if _, err := Eval(c, env); err == nil {
		t.Error("unsubstituted condition should need an s1 resolver")
	}
}

func TestSubstTermsNested(t *testing.T) {
	inner := Fn1("g", Arg1(0))
	outer := Fn2("f", inner)
	c := Eq(outer, Ret2())
	// Substituting the inner term leaves the outer function live.
	got := SubstTerms(c, map[string]Value{TermKey(inner): VInt(7)})
	env := &PairEnv{
		Inv1: NewInvocation("m", []Value{VInt(1)}, Value{}),
		Inv2: NewInvocation("m", nil, VInt(107)),
		S2: func(fn string, args []Value) (Value, error) {
			return VInt(args[0].Int() + 100), nil
		},
	}
	ok, err := Eval(got, env)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("f(g=7)=107 should equal r2")
	}
}

func TestSubstTermsEmptyNoop(t *testing.T) {
	c := Ne(Arg1(0), Arg2(0))
	if got := SubstTerms(c, nil); !CondEqual(got, c) {
		t.Error("empty substitution changed the condition")
	}
}

func TestSubstTermsArith(t *testing.T) {
	ft := Fn1("f", Arg1(0))
	c := Lt(Add(ft, Lit(1)), Lit(10))
	got := SubstTerms(c, map[string]Value{TermKey(ft): VInt(3)})
	env := &PairEnv{
		Inv1: NewInvocation("m", []Value{VInt(0)}, Value{}),
		Inv2: NewInvocation("m", nil, Value{}),
	}
	ok, err := Eval(got, env)
	if err != nil || !ok {
		t.Errorf("3+1 < 10 should hold: %v %v", ok, err)
	}
}

func TestSubstTermsThroughConnectives(t *testing.T) {
	ft := Fn1("f", Arg1(0))
	c := Not(Or(Eq(ft, Lit(1)), And(Ne(ft, Lit(2)), Eq(ft, Lit(3)))))
	got := SubstTerms(c, map[string]Value{TermKey(ft): VInt(5)})
	env := &PairEnv{
		Inv1: NewInvocation("m", []Value{VInt(0)}, Value{}),
		Inv2: NewInvocation("m", nil, Value{}),
	}
	ok, err := Eval(got, env)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("!(5=1 || (5!=2 && 5=3)) should hold")
	}
}
