package core

import (
	"fmt"
	"strings"
)

// Side identifies which invocation of a method pair a term refers to:
// the first (earlier) invocation m1 or the second (later) invocation m2.
type Side int

// The two sides of a method pair.
const (
	First  Side = 1
	Second Side = 2
)

func (s Side) String() string {
	switch s {
	case First:
		return "1"
	case Second:
		return "2"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == First {
		return Second
	}
	return First
}

// ArithOp is an arithmetic connective of L1.
type ArithOp int

// Arithmetic connectives.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return "?"
	}
}

// Term is a value-producing expression of the logic L1 (figure 1 of the
// paper): an argument or return value of one of the two invocations, a
// constant, a function evaluated against one of the two abstract states,
// or an arithmetic combination of terms.
type Term interface {
	isTerm()
	String() string
}

// ArgTerm refers to argument Index (0-based) of the invocation on Side.
type ArgTerm struct {
	Side  Side
	Index int
}

// RetTerm refers to the return value of the invocation on Side.
type RetTerm struct {
	Side Side
}

// ConstTerm is a literal constant.
type ConstTerm struct {
	V Value
}

// FnTerm applies the named function against the abstract state of Side
// (s1 or s2). State-independent helper functions (such as a partition map
// or a distance metric over constants) are still routed through a side so
// that evaluation knows which environment resolves them; conventionally
// they are attached to the side of their first argument.
type FnTerm struct {
	Fn    string
	State Side
	Args  []Term
}

// ArithTerm combines two terms with an arithmetic connective.
type ArithTerm struct {
	Op   ArithOp
	L, R Term
}

func (ArgTerm) isTerm()   {}
func (RetTerm) isTerm()   {}
func (ConstTerm) isTerm() {}
func (FnTerm) isTerm()    {}
func (ArithTerm) isTerm() {}

func (t ArgTerm) String() string { return fmt.Sprintf("v%s[%d]", t.Side, t.Index) }
func (t RetTerm) String() string { return fmt.Sprintf("r%s", t.Side) }
func (t ConstTerm) String() string {
	if s, ok := t.V.AsString(); ok {
		return fmt.Sprintf("%q", s)
	}
	return t.V.String()
}
func (t FnTerm) String() string {
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s@s%s(%s)", t.Fn, t.State, strings.Join(args, ", "))
}
func (t ArithTerm) String() string {
	return fmt.Sprintf("(%s %s %s)", t.L, t.Op, t.R)
}

// Arg1 returns a term for argument i of the first invocation.
func Arg1(i int) Term { return ArgTerm{Side: First, Index: i} }

// Arg2 returns a term for argument i of the second invocation.
func Arg2(i int) Term { return ArgTerm{Side: Second, Index: i} }

// Ret1 is the return value of the first invocation.
func Ret1() Term { return RetTerm{Side: First} }

// Ret2 is the return value of the second invocation.
func Ret2() Term { return RetTerm{Side: Second} }

// Lit returns a constant term with the (normalized) value v. It accepts
// any Go value for spec-construction convenience; the tagged Value
// constructors normalize it once, here, at spec-build time.
func Lit(v any) Term { return ConstTerm{V: V(v)} }

// Fn1 applies fn in the abstract state of the first invocation.
func Fn1(fn string, args ...Term) Term { return FnTerm{Fn: fn, State: First, Args: args} }

// Fn2 applies fn in the abstract state of the second invocation.
func Fn2(fn string, args ...Term) Term { return FnTerm{Fn: fn, State: Second, Args: args} }

// Add, Sub, Mul, Div build arithmetic terms.
func Add(l, r Term) Term { return ArithTerm{Op: OpAdd, L: l, R: r} }

// Sub builds l - r.
func Sub(l, r Term) Term { return ArithTerm{Op: OpSub, L: l, R: r} }

// Mul builds l * r.
func Mul(l, r Term) Term { return ArithTerm{Op: OpMul, L: l, R: r} }

// Div builds l / r.
func Div(l, r Term) Term { return ArithTerm{Op: OpDiv, L: l, R: r} }

// SwapTermSides returns t with every reference to the first invocation
// rewritten to the second and vice versa. It realizes the symmetry
// f(m1, m2) == swap(f)(m2, m1) used when looking up a condition for a
// method pair in the opposite order.
func SwapTermSides(t Term) Term {
	switch x := t.(type) {
	case ArgTerm:
		return ArgTerm{Side: x.Side.Other(), Index: x.Index}
	case RetTerm:
		return RetTerm{Side: x.Side.Other()}
	case ConstTerm:
		return x
	case FnTerm:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = SwapTermSides(a)
		}
		return FnTerm{Fn: x.Fn, State: x.State.Other(), Args: args}
	case ArithTerm:
		return ArithTerm{Op: x.Op, L: SwapTermSides(x.L), R: SwapTermSides(x.R)}
	default:
		panic(fmt.Sprintf("core: unknown term %T", t))
	}
}

// termSides reports which invocation sides a term's arguments and return
// values mention, and whether it mentions a state function on each side.
type sideInfo struct {
	val  [3]bool // index by Side: mentions v/r of that side
	stat [3]bool // index by Side: mentions a function of that side's state
}

func (si *sideInfo) merge(o sideInfo) {
	for i := range si.val {
		si.val[i] = si.val[i] || o.val[i]
		si.stat[i] = si.stat[i] || o.stat[i]
	}
}

func termSideInfo(t Term) sideInfo {
	var si sideInfo
	switch x := t.(type) {
	case ArgTerm:
		si.val[x.Side] = true
	case RetTerm:
		si.val[x.Side] = true
	case ConstTerm:
	case FnTerm:
		si.stat[x.State] = true
		for _, a := range x.Args {
			si.merge(termSideInfo(a))
		}
	case ArithTerm:
		si.merge(termSideInfo(x.L))
		si.merge(termSideInfo(x.R))
	}
	return si
}

// termKey produces a canonical string key for structural comparison of
// terms (used by Simplify and Implies). The String form is already
// canonical for our constructors.
func termKey(t Term) string { return t.String() }
