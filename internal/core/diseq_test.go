package core

import "testing"

// Conditions mirroring the repository's example specifications.

func setAddAddCond() Cond {
	// a1 != a2 || (r1 = false && r2 = false)
	return Or(
		Ne(Arg1(0), Arg2(0)),
		And(Eq(Ret1(), Lit(false)), Eq(Ret2(), Lit(false))),
	)
}

func TestDecomposeDiseqPureConjunction(t *testing.T) {
	// a1 != a2 && a1 != b2: the read-write set regime — both guards,
	// pure.
	c := And(Ne(Arg1(0), Arg2(0)), Ne(Arg1(0), Arg2(1)))
	dec := DecomposeDiseq(c, nil)
	if !dec.Indexable || !dec.Pure {
		t.Fatalf("want indexable pure, got %+v", dec)
	}
	if len(dec.Guards) != 2 {
		t.Fatalf("want 2 guards, got %d", len(dec.Guards))
	}
}

func TestDecomposeDiseqDistributesOr(t *testing.T) {
	dec := DecomposeDiseq(setAddAddCond(), nil)
	if !dec.Indexable {
		t.Fatalf("set add~add should be indexable: %+v", dec)
	}
	if dec.Pure {
		t.Fatalf("set add~add has a residual, must not be pure")
	}
	// Distribution yields (Ne ∨ r1=false) ∧ (Ne ∨ r2=false): the same
	// guard twice, deduplicated to one.
	if len(dec.Guards) != 1 {
		t.Fatalf("want 1 deduped guard, got %d: %+v", len(dec.Guards), dec.Guards)
	}
	g := dec.Guards[0]
	if termKey(g.X) != termKey(Arg1(0)) || termKey(g.Y) != termKey(Arg2(0)) {
		t.Fatalf("unexpected guard %v != %v", g.X, g.Y)
	}
}

func TestDecomposeDiseqOrientsSides(t *testing.T) {
	// Written backwards: a2 != a1 still yields X on the first side.
	dec := DecomposeDiseq(Ne(Arg2(0), Arg1(0)), nil)
	if !dec.Indexable || !dec.Pure || len(dec.Guards) != 1 {
		t.Fatalf("got %+v", dec)
	}
	if termKey(dec.Guards[0].X) != termKey(Arg1(0)) {
		t.Fatalf("X side not oriented to first invocation: %v", dec.Guards[0].X)
	}
}

func TestDecomposeDiseqLoggedStateKeys(t *testing.T) {
	// lookup@s1(k1) != r2 — X involves first-state functions (forward
	// gatekeepers log them), Y is a plain second value.
	c := Ne(Fn1("lookup", Arg1(0)), Ret2())
	dec := DecomposeDiseq(c, nil)
	if !dec.Indexable || len(dec.Guards) != 1 {
		t.Fatalf("got %+v", dec)
	}
	if termKey(dec.Guards[0].Y) != termKey(Ret2()) {
		t.Fatalf("want Ret2 probe side, got %v", dec.Guards[0].Y)
	}
}

func TestDecomposeDiseqRejectsMixedSides(t *testing.T) {
	// rep@s1(v2.a) != loser@s1(v1.a, v1.b): the union-find regime — the
	// would-be probe side touches first-invocation state, so no clean
	// split exists and the pair must fall back to scanning.
	c := Ne(Fn1("rep", Arg2(0)), Fn1("loser", Arg1(0), Arg1(1)))
	if dec := DecomposeDiseq(c, nil); dec.Indexable {
		t.Fatalf("union-find style condition must not be indexable: %+v", dec)
	}
}

func TestDecomposeDiseqRejectsClauseWithoutDiseq(t *testing.T) {
	// r2 = false || dist(a1,a2) > dist(a1,r1): kd-tree nearest~add — no
	// disequality literal anywhere, not indexable.
	pure := map[string]bool{"dist": true}
	c := Or(
		Eq(Ret2(), Lit(false)),
		Gt(Fn2("dist", Arg1(0), Arg2(0)), Fn1("dist", Arg1(0), Ret1())),
	)
	if dec := DecomposeDiseq(c, pure); dec.Indexable {
		t.Fatalf("kd nearest~add must not be indexable: %+v", dec)
	}
}

func TestDecomposeDiseqKdNearestRemove(t *testing.T) {
	// (a1 != a2 && r1 != a2) || r2 = false distributes into two guarded
	// clauses.
	c := Or(
		And(Ne(Arg1(0), Arg2(0)), Ne(Ret1(), Arg2(0))),
		Eq(Ret2(), Lit(false)),
	)
	dec := DecomposeDiseq(c, map[string]bool{"dist": true})
	if !dec.Indexable || dec.Pure {
		t.Fatalf("got %+v", dec)
	}
	if len(dec.Guards) != 2 {
		t.Fatalf("want guards (a1,a2) and (r1,a2), got %+v", dec.Guards)
	}
}

func TestDecomposeDiseqRejectsPartialCoverage(t *testing.T) {
	// One conjunct is a guardable disequality, the other clause has
	// none. Partial guards are unsound for skipping, so the whole
	// decomposition must fail.
	c := And(Ne(Arg1(0), Arg2(0)), Lt(Arg1(1), Arg2(1)))
	if dec := DecomposeDiseq(c, nil); dec.Indexable {
		t.Fatalf("partial clause coverage must not be indexable: %+v", dec)
	}
}

func TestDecomposeDiseqTrivial(t *testing.T) {
	if dec := DecomposeDiseq(True(), nil); dec.Indexable {
		t.Fatalf("true must not be indexable")
	}
	if dec := DecomposeDiseq(False(), nil); dec.Indexable {
		t.Fatalf("false must not be indexable")
	}
}

func TestDecomposeDiseqCNFBlowupBounded(t *testing.T) {
	// A deep Or-of-Ands whose distribution exceeds maxCNFClauses must
	// fail closed rather than hang or mis-index.
	var parts []Cond
	for i := 0; i < 8; i++ {
		parts = append(parts, And(
			Ne(Arg1(i), Arg2(i)),
			Ne(Arg1(i+8), Arg2(i+8)),
		))
	}
	c := Or(parts...)
	if dec := DecomposeDiseq(c, nil); dec.Indexable {
		t.Fatalf("CNF blowup must fail closed: %d guards", len(dec.Guards))
	}
}
