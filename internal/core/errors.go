package core

import "fmt"

// ErrUnknownFn builds the standard error a state-function resolver
// returns for a name it does not implement.
func ErrUnknownFn(fn string) error {
	return fmt.Errorf("core: unknown state function %q", fn)
}

// ErrBadArgs builds the standard error a state-function resolver returns
// for arguments of the wrong type or arity.
func ErrBadArgs(fn string) error {
	return fmt.Errorf("core: bad arguments for state function %q", fn)
}
