package core

import (
	"strings"
	"testing"
)

// setSig is the test fixture ADT: the set of figures 2 and 3.
func setSig() *ADTSig {
	return &ADTSig{
		Name: "set",
		Methods: []MethodSig{
			{Name: "add", Params: []string{"x"}, HasRet: true},
			{Name: "remove", Params: []string{"x"}, HasRet: true},
			{Name: "contains", Params: []string{"x"}, HasRet: true},
		},
	}
}

// preciseSetSpec mirrors figure 2.
func preciseSetSpec() *Spec {
	neOrBothFalse := Or(Ne(Arg1(0), Arg2(0)), And(Eq(Ret1(), Lit(false)), Eq(Ret2(), Lit(false))))
	neOrR1False := Or(Ne(Arg1(0), Arg2(0)), Eq(Ret1(), Lit(false)))
	s := NewSpec(setSig())
	s.Set("add", "add", neOrBothFalse)
	s.Set("add", "remove", neOrBothFalse)
	s.Set("add", "contains", neOrR1False)
	s.Set("remove", "remove", neOrBothFalse)
	s.Set("remove", "contains", neOrR1False)
	s.Set("contains", "contains", True())
	return s
}

// rwSetSpec mirrors figure 3 (the strengthened, SIMPLE spec).
func rwSetSpec() *Spec {
	ne := Ne(Arg1(0), Arg2(0))
	s := NewSpec(setSig())
	s.Set("add", "add", ne)
	s.Set("add", "remove", ne)
	s.Set("add", "contains", ne)
	s.Set("remove", "remove", ne)
	s.Set("remove", "contains", ne)
	s.Set("contains", "contains", True())
	return s
}

func TestSpecDefaultsFalse(t *testing.T) {
	s := NewSpec(setSig())
	if _, ok := s.Cond("add", "remove").(FalseCond); !ok {
		t.Error("unset pair should default to false")
	}
}

func TestSpecSymmetricLookup(t *testing.T) {
	s := NewSpec(setSig())
	s.Set("add", "contains", Or(Ne(Arg1(0), Arg2(0)), Eq(Ret1(), Lit(false))))
	// Looking up (contains, add): the roles swap, so it is now r2 (the
	// add's return) that must be false.
	got := s.Cond("contains", "add")
	want := Or(Ne(Arg2(0), Arg1(0)), Eq(Ret2(), Lit(false)))
	if !CondEqual(got, want) {
		t.Errorf("swapped lookup = %s, want %s", got, want)
	}
}

func TestSpecSelfPairSwapLookup(t *testing.T) {
	// An orientation-sensitive self-pair condition (like union-find's
	// union~union) is stored as-is; lookups use the stored orientation.
	s := NewSpec(setSig())
	c := Or(Ne(Arg1(0), Arg2(0)), Eq(Ret1(), Lit(false)))
	s.Set("add", "add", c)
	if !CondEqual(s.Cond("add", "add"), c) {
		t.Errorf("self-pair condition mangled: %s", s.Cond("add", "add"))
	}
}

func TestSpecSetUnknownMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown method should panic")
		}
	}()
	NewSpec(setSig()).Set("add", "nope", True())
}

func TestSpecClassify(t *testing.T) {
	if got := preciseSetSpec().Classify(); got != ClassOnline {
		t.Errorf("precise set spec class = %v, want ONLINE-CHECKABLE", got)
	}
	if got := rwSetSpec().Classify(); got != ClassSimple {
		t.Errorf("rw set spec class = %v, want SIMPLE", got)
	}
	if got := Bottom(setSig()).Classify(); got != ClassSimple {
		t.Errorf("bottom spec class = %v, want SIMPLE", got)
	}
}

func TestLatticeOrder(t *testing.T) {
	precise := preciseSetSpec()
	rw := rwSetSpec()
	bot := Bottom(setSig())
	if !rw.LE(precise) {
		t.Error("figure 3 should be ≤ figure 2 in the lattice")
	}
	if precise.LE(rw) {
		t.Error("figure 2 should not be ≤ figure 3")
	}
	if !bot.LE(rw) || !bot.LE(precise) {
		t.Error("⊥ should be below everything")
	}
	if !precise.LE(precise) {
		t.Error("LE should be reflexive")
	}
}

func TestLatticeMeetJoin(t *testing.T) {
	precise := preciseSetSpec()
	rw := rwSetSpec()
	meet := precise.Meet(rw)
	join := precise.Join(rw)
	// a ≤ b ⟺ a ⊓ b = a and a ⊔ b = b.
	for _, p := range precise.Pairs() {
		m1, m2 := p[0], p[1]
		if !CondEqual(meet.Cond(m1, m2), rw.Cond(m1, m2)) {
			t.Errorf("meet(%s,%s) = %s, want %s", m1, m2, meet.Cond(m1, m2), rw.Cond(m1, m2))
		}
		if !CondEqual(join.Cond(m1, m2), precise.Cond(m1, m2)) {
			t.Errorf("join(%s,%s) = %s, want %s", m1, m2, join.Cond(m1, m2), precise.Cond(m1, m2))
		}
	}
}

func TestLatticeMeetJoinLaws(t *testing.T) {
	a, b := preciseSetSpec(), rwSetSpec()
	// Commutativity of meet/join up to condition equality.
	ab, ba := a.Meet(b), b.Meet(a)
	for _, p := range a.Pairs() {
		if !CondEqual(ab.Cond(p[0], p[1]), ba.Cond(p[0], p[1])) {
			t.Errorf("meet not commutative at %v", p)
		}
	}
	// Absorption: a ⊔ (a ⊓ b) = a.
	abs := a.Join(a.Meet(b))
	for _, p := range a.Pairs() {
		if !Implies(abs.Cond(p[0], p[1]), a.Cond(p[0], p[1])) || !Implies(a.Cond(p[0], p[1]), abs.Cond(p[0], p[1])) {
			t.Errorf("absorption failed at %v: %s vs %s", p, abs.Cond(p[0], p[1]), a.Cond(p[0], p[1]))
		}
	}
	// Meet and join results are valid bounds.
	if !ab.LE(a) || !ab.LE(b) {
		t.Error("meet is not a lower bound")
	}
	aj := a.Join(b)
	if !a.LE(aj) || !b.LE(aj) {
		t.Error("join is not an upper bound")
	}
}

func TestPartitionSpec(t *testing.T) {
	rw := rwSetSpec()
	part, err := rw.PartitionSpec("part")
	if err != nil {
		t.Fatal(err)
	}
	if !part.Pure["part"] {
		t.Error("partition key should be registered pure")
	}
	// Partition spec is below the element spec.
	if !part.LE(rw) {
		t.Error("partition spec should be ≤ element spec")
	}
	if rw.LE(part) {
		t.Error("element spec should not be ≤ partition spec")
	}
	// Its conditions are keyed-SIMPLE.
	c := part.Cond("add", "add")
	if _, ok := AsSimple(c, part.Pure); !ok {
		t.Errorf("partitioned condition should be keyed-SIMPLE: %s", c)
	}
	// true / false pairs survive unchanged.
	if _, ok := part.Cond("contains", "contains").(TrueCond); !ok {
		t.Error("true condition should stay true under partitioning")
	}
}

func TestPartitionSpecRejectsNonSimple(t *testing.T) {
	if _, err := preciseSetSpec().PartitionSpec("part"); err == nil {
		t.Error("partitioning a non-SIMPLE spec should fail")
	}
}

func TestSpecString(t *testing.T) {
	s := rwSetSpec().String()
	if !strings.Contains(s, "add ~ remove") || !strings.Contains(s, "v1[0] != v2[0]") {
		t.Errorf("unexpected spec rendering:\n%s", s)
	}
}

func TestSpecPairsCount(t *testing.T) {
	// 3 methods -> 6 unordered pairs including self-pairs.
	if got := len(preciseSetSpec().Pairs()); got != 6 {
		t.Errorf("Pairs() = %d, want 6", got)
	}
}

func TestSpecClone(t *testing.T) {
	a := rwSetSpec()
	b := a.Clone()
	b.Set("add", "add", False())
	if _, ok := a.Cond("add", "add").(FalseCond); ok {
		t.Error("Clone should not share condition storage")
	}
}

func TestDirectedOverrideSurvivesLattice(t *testing.T) {
	// A spec with a directed (remove,nearest)-style override must keep
	// both directions through Meet/Join/Clone.
	sig := &ADTSig{Name: "d", Methods: []MethodSig{
		{Name: "a", Params: []string{"x"}, HasRet: true},
		{Name: "b", Params: []string{"x"}, HasRet: true},
	}}
	s := NewSpec(sig)
	s.Set("a", "a", True())
	s.Set("b", "b", True())
	s.Set("a", "b", Ne(Arg1(0), Arg2(0)))
	s.Set("b", "a", Or(Ne(Arg1(0), Arg2(0)), Eq(Ret1(), Lit(false)))) // directed override
	if CondEqual(s.Cond("b", "a"), SwapSides(s.Cond("a", "b"))) {
		t.Fatal("fixture is not actually directed")
	}
	for name, derived := range map[string]*Spec{
		"clone": s.Clone(),
		"meet":  s.Meet(s),
		"join":  s.Join(s),
	} {
		if !CondEqual(derived.Cond("b", "a"), s.Cond("b", "a")) {
			t.Errorf("%s lost the directed override: %s", name, derived.Cond("b", "a"))
		}
		if !CondEqual(derived.Cond("a", "b"), s.Cond("a", "b")) {
			t.Errorf("%s mangled the forward direction: %s", name, derived.Cond("a", "b"))
		}
	}
}

func TestNotNormalizationFeedsClassify(t *testing.T) {
	// !(a = b) simplifies to a ≠ b and is therefore SIMPLE.
	c := Not(Eq(Arg1(0), Arg2(0)))
	if Classify(c) != ClassSimple {
		t.Errorf("Classify(%s) = %v, want SIMPLE", c, Classify(c))
	}
	// Double negation cancels.
	if Classify(Not(Not(Ne(Arg1(0), Arg2(0))))) != ClassSimple {
		t.Error("double negation should classify SIMPLE")
	}
}

func TestOrAbsorption(t *testing.T) {
	ne := Ne(Arg1(0), Arg2(0))
	other := Eq(Ret1(), Lit(false))
	// a ∨ (a ∧ b) = a.
	got := Simplify(Or(ne, And(ne, other)))
	if !CondEqual(got, ne) {
		t.Errorf("Or absorption: %s", got)
	}
	// (a ∧ b) ∨ a = a, regardless of order.
	got = Simplify(Or(And(other, ne), ne))
	if !CondEqual(got, ne) {
		t.Errorf("Or absorption (reversed): %s", got)
	}
}

func TestSpecOrientedAndStoredAccessors(t *testing.T) {
	sig := &ADTSig{Name: "uf", Methods: []MethodSig{
		{Name: "union", Params: []string{"a", "b"}},
		{Name: "find", Params: []string{"a"}, HasRet: true},
	}}
	s := NewSpec(sig)
	s.Set("union", "find", Ne(Arg2(0), Arg1(0)))
	s.Set("find", "find", True())
	if s.IsOriented("union", "union") {
		t.Error("pair oriented before declaration")
	}
	s.SetOriented("union", "union")
	if !s.IsOriented("union", "union") {
		t.Error("self pair not oriented after declaration")
	}
	// The declaration is unordered: either argument order hits it.
	s.SetOriented("find", "union")
	if !s.IsOriented("union", "find") || !s.IsOriented("find", "union") {
		t.Error("oriented declaration must be orientation-insensitive itself")
	}
	got := s.OrientedPairs()
	want := [][2]string{{"find", "union"}, {"union", "union"}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("OrientedPairs() = %v, want %v", got, want)
	}

	stored := s.StoredPairs()
	if len(stored) != 2 || stored[0] != [2]string{"find", "find"} || stored[1] != [2]string{"union", "find"} {
		t.Errorf("StoredPairs() = %v", stored)
	}
	if _, ok := s.StoredCond("find", "union"); ok {
		t.Error("StoredCond must not fall back to swap-derivation")
	}
	if c, ok := s.StoredCond("union", "find"); !ok || condKey(c) != condKey(Ne(Arg1(0), Arg2(0))) {
		t.Errorf("StoredCond(union, find) = %v, %v", c, ok)
	}

	clone := s.Clone()
	if !clone.IsOriented("union", "union") || !clone.IsOriented("find", "union") {
		t.Error("Clone must carry oriented declarations")
	}
	clone.SetOriented("find", "find")
	if s.IsOriented("find", "find") {
		t.Error("Clone must not share the oriented set")
	}
}
