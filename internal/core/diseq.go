package core

// Disequality decomposition for the gatekeepers' hash index.
//
// The paper's abstract-locking scheme (§3.2) exploits the observation
// that SIMPLE conditions are conjunctions of slot disequalities, so
// commutativity can be decided by hashing on slot values instead of
// pairwise checks. This file generalizes that observation to the richer
// conditions the gatekeepers handle: it extracts, from an arbitrary L1
// condition, a set of disequality "guards" x ≠ y such that the
// condition is implied whenever every guard holds. A gatekeeper can
// then index active invocations by the x-values and run the full
// checker only on hash collisions.
//
// Soundness rests on a conjunctive-normal-form argument: if every CNF
// clause of the condition contains a disequality literal x ≠ y with x
// computable from the first invocation alone and y from the second,
// then "all those disequalities hold" makes every clause true, hence
// the whole condition true. A probe that misses every guard key can
// therefore skip the checker entirely. Partial coverage is useless —
// one satisfied clause says nothing about the others — so decomposition
// is all-or-nothing.

// DiseqGuard is one extracted disequality x ≠ y. X mentions only the
// first invocation (its values, and — for gatekeepers with logs — its
// state functions); Y mentions only the second invocation or constants.
// If the two evaluate to different values the guard's CNF clause is
// satisfied.
type DiseqGuard struct {
	X Term // first-invocation side: the indexed key
	Y Term // second-invocation side: the probe key
}

// DiseqDecomp is the result of DecomposeDiseq.
type DiseqDecomp struct {
	// Guards holds one disequality per CNF clause (deduplicated).
	// Non-empty only when Indexable.
	Guards []DiseqGuard
	// Indexable reports that every CNF clause of the condition
	// contributed a guard, so "all guards hold" implies the condition.
	Indexable bool
	// Pure reports that the condition is exactly the conjunction of the
	// guards' disequalities (no residual): a collision on any guard
	// falsifies the condition outright, so a conflict can be declared
	// without evaluating the checker. (NaN collisions are excluded by
	// the caller: NaN ≠ NaN holds under ValueEq.)
	Pure bool
}

// maxCNFClauses bounds the distribution of ∨ over ∧ when converting a
// condition to CNF. Past this the decomposition gives up and reports
// not-indexable; real specifications' conditions are tiny.
const maxCNFClauses = 32

// DecomposeDiseq analyzes a pair condition for the disequality index.
// pure names the specification's pure (state-independent) functions:
// a pure function of second-invocation arguments is still a legal probe
// key, and a pure function of first-invocation arguments needs no log.
func DecomposeDiseq(c Cond, pure map[string]bool) DiseqDecomp {
	c = Simplify(c)
	switch c.(type) {
	case TrueCond, FalseCond:
		return DiseqDecomp{}
	}
	clauses, ok := cnfClauses(c)
	if !ok {
		return DiseqDecomp{}
	}
	dec := DiseqDecomp{Indexable: true, Pure: true}
	seen := map[[2]string]bool{}
	for _, clause := range clauses {
		// A clause containing a `true` literal is vacuous: it needs no
		// guard. (Simplify folds these away at the top level, but
		// distribution can in principle resurface them.)
		vacuous := false
		for _, lit := range clause {
			if _, isTrue := lit.(TrueCond); isTrue {
				vacuous = true
				break
			}
		}
		if vacuous {
			continue
		}
		g, gok := clauseGuard(clause, pure)
		if !gok {
			return DiseqDecomp{}
		}
		if len(clause) > 1 {
			dec.Pure = false
		}
		key := [2]string{termKey(g.X), termKey(g.Y)}
		if !seen[key] {
			seen[key] = true
			dec.Guards = append(dec.Guards, g)
		}
	}
	if len(dec.Guards) == 0 {
		return DiseqDecomp{}
	}
	return dec
}

// cnfClauses converts a simplified condition to conjunctive normal
// form, returning the clauses as slices of literals. It fails (ok =
// false) on negations of non-literals and when distribution would
// exceed maxCNFClauses.
func cnfClauses(c Cond) ([][]Cond, bool) {
	switch x := c.(type) {
	case TrueCond, FalseCond, CmpCond:
		return [][]Cond{{x}}, true
	case NotCond:
		// Simplify pushes negation through comparisons; anything left
		// under a Not is an opaque subformula we refuse to expand.
		return nil, false
	case AndCond:
		l, ok := cnfClauses(x.L)
		if !ok {
			return nil, false
		}
		r, ok := cnfClauses(x.R)
		if !ok {
			return nil, false
		}
		out := append(l, r...)
		if len(out) > maxCNFClauses {
			return nil, false
		}
		return out, true
	case OrCond:
		l, ok := cnfClauses(x.L)
		if !ok {
			return nil, false
		}
		r, ok := cnfClauses(x.R)
		if !ok {
			return nil, false
		}
		if len(l)*len(r) > maxCNFClauses {
			return nil, false
		}
		// (A ∧ B) ∨ (C ∧ D) = (A∨C) ∧ (A∨D) ∧ (B∨C) ∧ (B∨D)
		out := make([][]Cond, 0, len(l)*len(r))
		for _, cl := range l {
			for _, cr := range r {
				clause := make([]Cond, 0, len(cl)+len(cr))
				clause = append(clause, cl...)
				clause = append(clause, cr...)
				out = append(out, clause)
			}
		}
		return out, true
	default:
		return nil, false
	}
}

// clauseGuard picks an indexable disequality literal from a CNF clause.
// The literal must be a CmpNe whose sides split cleanly: one side (X)
// mentions the first invocation and nothing of the second; the other
// (Y) mentions no first-invocation values or state. X may involve
// first-state functions — gatekeepers evaluate it when the first
// invocation is inserted, where logs or live state are available — but
// Y must be evaluable at probe time from the second invocation alone,
// so it must not touch mutable state on either side (pure functions are
// fine).
func clauseGuard(clause []Cond, pure map[string]bool) (DiseqGuard, bool) {
	for _, lit := range clause {
		cmp, ok := lit.(CmpCond)
		if !ok || cmp.Op != CmpNe {
			continue
		}
		if g, ok := guardSides(cmp.L, cmp.R, pure); ok {
			return g, true
		}
		if g, ok := guardSides(cmp.R, cmp.L, pure); ok {
			return g, true
		}
	}
	return DiseqGuard{}, false
}

// guardSides checks whether (x, y) is a valid (indexed side, probe
// side) orientation of a disequality.
func guardSides(x, y Term, pure map[string]bool) (DiseqGuard, bool) {
	xi := termSideInfoPure(x, pure)
	yi := termSideInfoPure(y, pure)
	// X: must actually involve the first invocation (a constant key
	// would index everything under one bucket — legal but useless) and
	// must be independent of the second.
	if !xi.val[First] && !xi.stat[First] {
		return DiseqGuard{}, false
	}
	if xi.val[Second] || xi.stat[Second] {
		return DiseqGuard{}, false
	}
	// Y: evaluated at probe time, before the pair checker runs, so it
	// may not depend on the first invocation or on mutable state of
	// either side (the probe has no per-entry logs in hand).
	if yi.val[First] || yi.stat[First] || yi.stat[Second] {
		return DiseqGuard{}, false
	}
	return DiseqGuard{X: x, Y: y}, true
}
