package core

import (
	"fmt"
	"sort"
	"strings"
)

// CmpOp is a comparison operator of L1.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota // =
	CmpNe              // ≠
	CmpLt              // <
	CmpGt              // >
	CmpLe              // ≤
	CmpGe              // ≥
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpGt:
		return ">"
	case CmpLe:
		return "<="
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// negate returns the complementary comparison operator.
func (op CmpOp) negate() CmpOp {
	switch op {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpGt:
		return CmpLe
	case CmpLe:
		return CmpGt
	case CmpGe:
		return CmpLt
	}
	return op
}

// Cond is a commutativity condition: a quantifier-free formula of L1 over
// the arguments, return values and state functions of two invocations.
type Cond interface {
	isCond()
	String() string
}

// TrueCond is the always-true condition (the invocations always commute).
type TrueCond struct{}

// FalseCond is the always-false condition (⊥: never commute).
type FalseCond struct{}

// NotCond is logical negation.
type NotCond struct{ C Cond }

// AndCond is logical conjunction.
type AndCond struct{ L, R Cond }

// OrCond is logical disjunction.
type OrCond struct{ L, R Cond }

// CmpCond compares two terms.
type CmpCond struct {
	Op   CmpOp
	L, R Term
}

func (TrueCond) isCond()  {}
func (FalseCond) isCond() {}
func (NotCond) isCond()   {}
func (AndCond) isCond()   {}
func (OrCond) isCond()    {}
func (CmpCond) isCond()   {}

func (TrueCond) String() string  { return "true" }
func (FalseCond) String() string { return "false" }
func (c NotCond) String() string { return fmt.Sprintf("!(%s)", c.C) }
func (c AndCond) String() string { return fmt.Sprintf("(%s && %s)", c.L, c.R) }
func (c OrCond) String() string  { return fmt.Sprintf("(%s || %s)", c.L, c.R) }
func (c CmpCond) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// True is the always-true condition.
func True() Cond { return TrueCond{} }

// False is the always-false condition.
func False() Cond { return FalseCond{} }

// Not negates a condition.
func Not(c Cond) Cond { return NotCond{C: c} }

// Eq builds l = r.
func Eq(l, r Term) Cond { return CmpCond{Op: CmpEq, L: l, R: r} }

// Ne builds l ≠ r.
func Ne(l, r Term) Cond { return CmpCond{Op: CmpNe, L: l, R: r} }

// Lt builds l < r.
func Lt(l, r Term) Cond { return CmpCond{Op: CmpLt, L: l, R: r} }

// Gt builds l > r.
func Gt(l, r Term) Cond { return CmpCond{Op: CmpGt, L: l, R: r} }

// Le builds l ≤ r.
func Le(l, r Term) Cond { return CmpCond{Op: CmpLe, L: l, R: r} }

// Ge builds l ≥ r.
func Ge(l, r Term) Cond { return CmpCond{Op: CmpGe, L: l, R: r} }

// And conjoins conditions; And() is true.
func And(cs ...Cond) Cond {
	switch len(cs) {
	case 0:
		return TrueCond{}
	case 1:
		return cs[0]
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = AndCond{L: out, R: c}
	}
	return out
}

// Or disjoins conditions; Or() is false.
func Or(cs ...Cond) Cond {
	switch len(cs) {
	case 0:
		return FalseCond{}
	case 1:
		return cs[0]
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = OrCond{L: out, R: c}
	}
	return out
}

// SwapSides rewrites a condition exchanging the roles of the first and
// second invocation, so that a stored condition for (m1, m2) can answer a
// query for (m2, m1).
func SwapSides(c Cond) Cond {
	switch x := c.(type) {
	case TrueCond, FalseCond:
		return x
	case NotCond:
		return NotCond{C: SwapSides(x.C)}
	case AndCond:
		return AndCond{L: SwapSides(x.L), R: SwapSides(x.R)}
	case OrCond:
		return OrCond{L: SwapSides(x.L), R: SwapSides(x.R)}
	case CmpCond:
		return CmpCond{Op: x.Op, L: SwapTermSides(x.L), R: SwapTermSides(x.R)}
	default:
		panic(fmt.Sprintf("core: unknown condition %T", c))
	}
}

// condKey is a canonical structural key for a condition, used to detect
// duplicate conjuncts/disjuncts during simplification and implication.
// Comparisons are normalized so that symmetric operands compare equal.
func condKey(c Cond) string {
	switch x := c.(type) {
	case TrueCond:
		return "true"
	case FalseCond:
		return "false"
	case NotCond:
		return "!(" + condKey(x.C) + ")"
	case AndCond:
		keys := conjKeys(x)
		sort.Strings(keys)
		return "&&[" + strings.Join(keys, ";") + "]"
	case OrCond:
		keys := disjKeys(x)
		sort.Strings(keys)
		return "||[" + strings.Join(keys, ";") + "]"
	case CmpCond:
		l, r := termKey(x.L), termKey(x.R)
		op := x.Op
		// Normalize symmetric and flippable comparisons so that
		// "a = b" and "b = a" (and "a < b" / "b > a") share a key.
		flip := false
		switch op {
		case CmpEq, CmpNe:
			flip = l > r
		case CmpGt:
			op, flip = CmpLt, true
		case CmpGe:
			op, flip = CmpLe, true
		}
		if flip {
			l, r = r, l
		}
		return fmt.Sprintf("%s %s %s", l, op, r)
	default:
		panic(fmt.Sprintf("core: unknown condition %T", c))
	}
}

func conjKeys(c Cond) []string {
	if a, ok := c.(AndCond); ok {
		return append(conjKeys(a.L), conjKeys(a.R)...)
	}
	return []string{condKey(c)}
}

func disjKeys(c Cond) []string {
	if o, ok := c.(OrCond); ok {
		return append(disjKeys(o.L), disjKeys(o.R)...)
	}
	return []string{condKey(c)}
}

// Conjuncts flattens a conjunction tree into its leaves.
func Conjuncts(c Cond) []Cond {
	if a, ok := c.(AndCond); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Cond{c}
}

// Disjuncts flattens a disjunction tree into its leaves.
func Disjuncts(c Cond) []Cond {
	if o, ok := c.(OrCond); ok {
		return append(Disjuncts(o.L), Disjuncts(o.R)...)
	}
	return []Cond{c}
}

// Simplify performs constant folding, flattening and duplicate removal on
// a condition. It preserves logical equivalence.
func Simplify(c Cond) Cond {
	switch x := c.(type) {
	case TrueCond, FalseCond, CmpCond:
		return x
	case NotCond:
		inner := Simplify(x.C)
		switch y := inner.(type) {
		case TrueCond:
			return FalseCond{}
		case FalseCond:
			return TrueCond{}
		case NotCond:
			return y.C
		case CmpCond:
			return CmpCond{Op: y.Op.negate(), L: y.L, R: y.R}
		default:
			return NotCond{C: inner}
		}
	case AndCond:
		var parts []Cond
		for _, leaf := range Conjuncts(x) {
			leaf = Simplify(leaf)
			switch leaf.(type) {
			case FalseCond:
				return FalseCond{}
			case TrueCond:
				continue
			}
			// Absorption: drop p when a kept conjunct already implies it;
			// drop kept conjuncts that p implies.
			redundant := false
			for _, k := range parts {
				if implies(k, leaf) {
					redundant = true
					break
				}
			}
			if redundant {
				continue
			}
			kept := parts[:0]
			for _, k := range parts {
				if !implies(leaf, k) {
					kept = append(kept, k)
				}
			}
			parts = append(kept, leaf)
		}
		return And(parts...)
	case OrCond:
		var parts []Cond
		for _, leaf := range Disjuncts(x) {
			leaf = Simplify(leaf)
			switch leaf.(type) {
			case TrueCond:
				return TrueCond{}
			case FalseCond:
				continue
			}
			// Absorption: drop p when it implies a kept disjunct; drop
			// kept disjuncts that imply p.
			redundant := false
			for _, k := range parts {
				if implies(leaf, k) {
					redundant = true
					break
				}
			}
			if redundant {
				continue
			}
			kept := parts[:0]
			for _, k := range parts {
				if !implies(k, leaf) {
					kept = append(kept, k)
				}
			}
			parts = append(kept, leaf)
		}
		return Or(parts...)
	default:
		panic(fmt.Sprintf("core: unknown condition %T", c))
	}
}

// CondEqual reports structural equality of two conditions up to
// flattening, duplicate removal and operand symmetry.
func CondEqual(a, b Cond) bool {
	return condKey(Simplify(a)) == condKey(Simplify(b))
}
