package core

// StrengthenToSimple derives a SIMPLE specification lying below spec in
// the commutativity lattice, automating the §4.1 discipline that turns
// figure 2 into figure 3 ("choose a less precise specification from the
// lattice that can be implemented more efficiently"). For each pair:
//
//   - a condition that is already SIMPLE is kept unchanged;
//   - otherwise the result is the conjunction of every slot disequality
//     `x ≠ y` (x a slot of m1, y a slot of m2) that *provably implies*
//     the original condition (via the sound Implies prover);
//   - when no single disequality implies it, the conjunction of all of
//     them is tried and greedily minimized (conditions like
//     `(u≠w ∧ v≠w) ∨ junk` need two literals together);
//   - if even that fails, the condition falls to false — e.g. the
//     kd-tree's nearest~add, for which the paper notes no useful SIMPLE
//     condition exists.
//
// Every strengthened condition implies the original (each conjunct does,
// hence the conjunction does), so the result is ≤ spec and any detector
// sound for it is sound for spec. The result is always synthesizable by
// abslock.Synthesize.
func StrengthenToSimple(spec *Spec) *Spec {
	out := NewSpec(spec.Sig)
	for f := range spec.Pure {
		out.Pure[f] = true
	}
	for _, p := range spec.OrderedPairs() {
		out.Set(p[0], p[1], strengthenCond(spec, p[0], p[1]))
	}
	return out
}

func strengthenCond(spec *Spec, m1, m2 string) Cond {
	c := Simplify(spec.Cond(m1, m2))
	if _, ok := AsSimple(c, nil); ok {
		return c
	}
	var conj, all []Cond
	for _, x := range methodSlots(spec.Sig, m1) {
		for _, y := range methodSlots(spec.Sig, m2) {
			ne := Ne(slotTerm(x, First), slotTerm(y, Second))
			all = append(all, ne)
			if Implies(ne, c) {
				conj = append(conj, ne)
			}
		}
	}
	if len(conj) > 0 {
		return Simplify(And(conj...))
	}
	// No single literal suffices; try the full conjunction and greedily
	// drop literals while implication still holds.
	if !Implies(And(all...), c) {
		return False()
	}
	kept := append([]Cond(nil), all...)
	for i := 0; i < len(kept); {
		trial := append(append([]Cond(nil), kept[:i]...), kept[i+1:]...)
		if len(trial) > 0 && Implies(And(trial...), c) {
			kept = trial
		} else {
			i++
		}
	}
	return Simplify(And(kept...))
}

// methodSlots enumerates a method's data-member slots: its arguments and
// (if any) its return value.
func methodSlots(sig *ADTSig, method string) []SlotRef {
	ms, ok := sig.Method(method)
	if !ok {
		return nil
	}
	slots := make([]SlotRef, 0, len(ms.Params)+1)
	for i := range ms.Params {
		slots = append(slots, SlotRef{Arg: i})
	}
	if ms.HasRet {
		slots = append(slots, SlotRef{IsRet: true})
	}
	return slots
}
