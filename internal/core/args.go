package core

import (
	"strings"
	"sync"
)

// MaxInlineArgs is the number of Values a Vec stores inline without heap
// allocation. Every specification in examples/specs (and every ADT in
// this repo) has methods of at most 4 arguments, so the invocation hot
// path never spills.
const MaxInlineArgs = 4

// Vec is a small vector of Values optimized for the invocation hot path:
// up to MaxInlineArgs values live in a fixed inline array, so argument
// lists and per-entry state-function logs travel inside gatekeeper
// entries, abstract-lock acquisitions and transaction records with zero
// heap allocation. Longer vectors spill to a pooled slice.
//
// Vec is a value type and may be copied freely while unspilled. A
// spilled Vec shares its spill slice across copies; only one copy may
// Release it. Mutating methods use pointer receivers — call them on
// addressable Vecs.
type Vec struct {
	n      int32
	inline [MaxInlineArgs]Value
	spill  []Value // when n > MaxInlineArgs, holds all n values
}

var vecSpillPool = sync.Pool{New: func() any { s := make([]Value, 0, 2*MaxInlineArgs); return &s }}

// MakeVec builds a Vec from vs. The variadic slice is copied, so the
// call allocates only when len(vs) > MaxInlineArgs (and then from a
// pool).
func MakeVec(vs ...Value) Vec {
	var v Vec
	v.SetLen(len(vs))
	for i, x := range vs {
		v.Set(i, x)
	}
	return v
}

// Args1 builds a 1-value Vec without any slice construction at the call
// site.
func Args1(a Value) Vec {
	return Vec{n: 1, inline: [MaxInlineArgs]Value{a}}
}

// Args2 builds a 2-value Vec.
func Args2(a, b Value) Vec {
	return Vec{n: 2, inline: [MaxInlineArgs]Value{a, b}}
}

// Args3 builds a 3-value Vec.
func Args3(a, b, c Value) Vec {
	return Vec{n: 3, inline: [MaxInlineArgs]Value{a, b, c}}
}

// Len returns the number of values.
func (v *Vec) Len() int { return int(v.n) }

// At returns the i-th value.
func (v *Vec) At(i int) Value {
	if v.spill != nil {
		return v.spill[i]
	}
	return v.inline[i]
}

// Set replaces the i-th value.
func (v *Vec) Set(i int, x Value) {
	if v.spill != nil {
		v.spill[i] = x
		return
	}
	v.inline[i] = x
}

// SetLen resizes the Vec to n values, zeroing new slots. Shrinking back
// under MaxInlineArgs keeps an existing spill (values stay in it) to
// avoid copying; Release returns it to the pool.
func (v *Vec) SetLen(n int) {
	if n <= int(v.n) {
		// Zero the dropped tail so no user refs are retained.
		for i := n; i < int(v.n); i++ {
			v.Set(i, Value{})
		}
		v.n = int32(n)
		return
	}
	if n > MaxInlineArgs && v.spill == nil {
		sp := *vecSpillPool.Get().(*[]Value)
		for len(sp) < n {
			sp = append(sp, Value{})
		}
		sp = sp[:n]
		copy(sp, v.inline[:v.n])
		for i := range v.inline {
			v.inline[i] = Value{}
		}
		v.spill = sp
	} else if v.spill != nil {
		for len(v.spill) < n {
			v.spill = append(v.spill, Value{})
		}
		v.spill = v.spill[:n]
	}
	for i := int(v.n); i < n; i++ {
		v.Set(i, Value{})
	}
	v.n = int32(n)
}

// Append adds a value at the end.
func (v *Vec) Append(x Value) {
	v.SetLen(int(v.n) + 1)
	v.Set(int(v.n)-1, x)
}

// Slice returns a live view of the values: the inline array for short
// vecs, the spill for long ones. The view aliases the Vec — do not
// retain it past the Vec's lifetime, and do not call it on a Vec that
// will be copied while the view is in use.
func (v *Vec) Slice() []Value {
	if v.spill != nil {
		return v.spill[:v.n]
	}
	return v.inline[:v.n]
}

// CopySlice appends the values to dst and returns it (for callers that
// need an independent []Value).
func (v *Vec) CopySlice(dst []Value) []Value {
	return append(dst, v.Slice()...)
}

// Release zeroes every value (so pooled records don't retain user-type
// references) and returns any spill slice to the pool. The Vec is reset
// to empty and remains usable.
func (v *Vec) Release() {
	for i := 0; i < int(v.n); i++ {
		v.Set(i, Value{})
	}
	if v.spill != nil {
		sp := v.spill[:0]
		v.spill = nil
		vecSpillPool.Put(&sp)
	}
	v.n = 0
}

// String renders the Vec like a Go slice of the old boxed values
// ("[1 2]"), keeping conflict-error messages stable. Value receiver so
// %v formatting works on Vec copies as well as pointers.
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < int(v.n); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		x := v.At(i)
		b.WriteString(x.String())
	}
	b.WriteByte(']')
	return b.String()
}
