package core

import "testing"

// TestStrengthenDerivesFigure3 is the paper's own example: strengthening
// the precise set specification (figure 2) must yield exactly the SIMPLE
// specification of figure 3.
func TestStrengthenDerivesFigure3(t *testing.T) {
	precise := preciseSetSpec()
	fig3 := rwSetSpec()
	got := StrengthenToSimple(precise)
	for _, p := range precise.OrderedPairs() {
		if !CondEqual(got.Cond(p[0], p[1]), fig3.Cond(p[0], p[1])) {
			t.Errorf("(%s,%s): strengthened to %s, figure 3 has %s",
				p[0], p[1], got.Cond(p[0], p[1]), fig3.Cond(p[0], p[1]))
		}
	}
	if got.Classify() != ClassSimple {
		t.Errorf("result class = %v", got.Classify())
	}
}

func TestStrengthenIsBelow(t *testing.T) {
	precise := preciseSetSpec()
	got := StrengthenToSimple(precise)
	if !got.LE(precise) {
		t.Error("strengthened spec must be ≤ the original")
	}
	if precise.LE(got) {
		t.Error("strengthening the precise set spec must be strict")
	}
}

func TestStrengthenPreservesSimple(t *testing.T) {
	fig3 := rwSetSpec()
	got := StrengthenToSimple(fig3)
	for _, p := range fig3.OrderedPairs() {
		if !CondEqual(got.Cond(p[0], p[1]), fig3.Cond(p[0], p[1])) {
			t.Errorf("(%s,%s): already-SIMPLE condition changed to %s",
				p[0], p[1], got.Cond(p[0], p[1]))
		}
	}
}

// TestStrengthenStateFulFallsToFalse: conditions built on state
// functions (kd-tree's nearest~add, union-find's union~union) have no
// useful SIMPLE under-approximation, matching the paper's remark that no
// straightforward SIMPLE kd-tree specification exists.
func TestStrengthenStateFulFallsToFalse(t *testing.T) {
	sig := &ADTSig{Name: "kd", Methods: []MethodSig{
		{Name: "nearest", Params: []string{"a"}, HasRet: true},
		{Name: "add", Params: []string{"a"}, HasRet: true},
	}}
	s := NewSpec(sig)
	s.DeclarePure("dist")
	s.Set("nearest", "nearest", True())
	s.Set("nearest", "add", Or(
		Eq(Ret2(), Lit(false)),
		Gt(Fn2("dist", Arg1(0), Arg2(0)), Fn1("dist", Arg1(0), Ret1())),
	))
	s.Set("add", "add", Or(Ne(Arg1(0), Arg2(0)),
		And(Eq(Ret1(), Lit(false)), Eq(Ret2(), Lit(false)))))
	got := StrengthenToSimple(s)
	if _, ok := got.Cond("nearest", "add").(FalseCond); !ok {
		t.Errorf("nearest~add strengthened to %s, want false", got.Cond("nearest", "add"))
	}
	if _, ok := got.Cond("nearest", "nearest").(TrueCond); !ok {
		t.Error("nearest~nearest should stay true")
	}
	if !CondEqual(got.Cond("add", "add"), Ne(Arg1(0), Arg2(0))) {
		t.Errorf("add~add strengthened to %s", got.Cond("add", "add"))
	}
}

// TestStrengthenSoundOnModel: the strengthened spec must still be sound
// per Definition 1 (it is ≤ the original, and the original is sound).
func TestStrengthenSoundOnModel(t *testing.T) {
	got := StrengthenToSimple(preciseSetSpec())
	bad, err := CheckCondSound(got, setStates(), setCalls())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestStrengthenMultiArgConjunction(t *testing.T) {
	// A two-argument method: every implying disequality joins the
	// conjunction.
	sig := &ADTSig{Name: "g", Methods: []MethodSig{
		{Name: "link", Params: []string{"u", "v"}},
		{Name: "touch", Params: []string{"u"}},
	}}
	s := NewSpec(sig)
	disjoint := And(Ne(Arg1(0), Arg2(0)), Ne(Arg1(1), Arg2(0)))
	// Weaken it with a disjunction so it is no longer SIMPLE.
	s.Set("link", "touch", Or(disjoint, And(Eq(Arg1(0), Lit(0)), Eq(Arg2(0), Lit(0)))))
	s.Set("link", "link", False())
	s.Set("touch", "touch", True())
	got := StrengthenToSimple(s)
	// Neither single disequality implies the original (both are needed
	// together), so the greedy conjunction pass must recover exactly the
	// two-literal disjoint condition.
	c := got.Cond("link", "touch")
	if !CondEqual(c, disjoint) {
		t.Errorf("strengthened to %s, want %s", c, disjoint)
	}
	if !Implies(c, s.Cond("link", "touch")) {
		t.Errorf("strengthened %s does not imply original", c)
	}
}
