package core

// Class ranks a condition (or specification) by which of the paper's
// sub-logics can express it, which in turn determines the cheapest
// systematic conflict-detection scheme able to implement it (§3.4):
// abstract locks for SIMPLE, forward gatekeepers for ONLINE-CHECKABLE,
// general gatekeepers for everything in L1.
type Class int

// Classification results, ordered from most to least restrictive.
const (
	ClassSimple  Class = iota // expressible in L2 (figure 6)
	ClassOnline               // expressible in L3 (figure 9)
	ClassGeneral              // requires full L1 (figure 1)
)

func (c Class) String() string {
	switch c {
	case ClassSimple:
		return "SIMPLE"
	case ClassOnline:
		return "ONLINE-CHECKABLE"
	case ClassGeneral:
		return "GENERAL"
	default:
		return "?"
	}
}

// Classify returns the most restrictive class a condition belongs to.
func Classify(c Cond) Class { return ClassifyWith(c, nil) }

// ClassifyWith classifies c treating the named functions as pure.
func ClassifyWith(c Cond, pure map[string]bool) Class {
	if IsSimple(c) {
		return ClassSimple
	}
	if IsOnlineCheckableWith(c, pure) {
		return ClassOnline
	}
	return ClassGeneral
}

// SlotRef identifies a "data member" slot of a method: one of its
// arguments (by index) or its return value. Slots are what abstract locks
// are attached to (§3.2).
type SlotRef struct {
	IsRet bool
	Arg   int
}

func (s SlotRef) String() string {
	if s.IsRet {
		return "ret"
	}
	return argSlotName(s.Arg)
}

func argSlotName(i int) string {
	// Single-argument methods conventionally call their slot "x"; further
	// arguments are x1, x2, ... for readable mode names.
	if i == 0 {
		return "x"
	}
	return "x" + string(rune('0'+i))
}

// SimpleConjunct is one conjunct of a SIMPLE condition: a disequality
// between a slot of m1 and a slot of m2, optionally through a pure key
// function (the lock-coarsening generalization of §4.2, where `a ≠ b`
// becomes `part(a) ≠ part(b)` and locks are taken on partitions).
type SimpleConjunct struct {
	X   SlotRef // slot of the first invocation
	Y   SlotRef // slot of the second invocation
	Key string  // "" for identity, otherwise a pure function name
}

// SimpleKind discriminates the three shapes a SIMPLE condition may take.
type SimpleKind int

// Shapes of a SIMPLE condition.
const (
	SimpleFalse SimpleKind = iota // methods never commute
	SimpleTrue                    // methods always commute
	SimpleConj                    // conjunction of slot disequalities
)

// SimpleForm is the normalized shape of a SIMPLE (L2) condition.
type SimpleForm struct {
	Kind      SimpleKind
	Conjuncts []SimpleConjunct
}

// AsSimple attempts to view c as a SIMPLE condition. pure names the key
// functions that may appear around slots (pass nil for strict L2, which
// admits none). The second result reports success.
func AsSimple(c Cond, pure map[string]bool) (*SimpleForm, bool) {
	c = Simplify(c)
	switch c.(type) {
	case TrueCond:
		return &SimpleForm{Kind: SimpleTrue}, true
	case FalseCond:
		return &SimpleForm{Kind: SimpleFalse}, true
	}
	var conj []SimpleConjunct
	for _, leaf := range Conjuncts(c) {
		cmp, ok := leaf.(CmpCond)
		if !ok || cmp.Op != CmpNe {
			return nil, false
		}
		lSlot, lSide, lKey, ok := slotOf(cmp.L, pure)
		if !ok {
			return nil, false
		}
		rSlot, rSide, rKey, ok := slotOf(cmp.R, pure)
		if !ok {
			return nil, false
		}
		if lKey != rKey || lSide == rSide {
			return nil, false
		}
		sc := SimpleConjunct{Key: lKey}
		if lSide == First {
			sc.X, sc.Y = lSlot, rSlot
		} else {
			sc.X, sc.Y = rSlot, lSlot
		}
		conj = append(conj, sc)
	}
	return &SimpleForm{Kind: SimpleConj, Conjuncts: conj}, true
}

// slotOf matches a term of the form v, r, or key(v)/key(r) with key pure.
func slotOf(t Term, pure map[string]bool) (SlotRef, Side, string, bool) {
	switch x := t.(type) {
	case ArgTerm:
		return SlotRef{Arg: x.Index}, x.Side, "", true
	case RetTerm:
		return SlotRef{IsRet: true}, x.Side, "", true
	case FnTerm:
		if pure == nil || !pure[x.Fn] || len(x.Args) != 1 {
			return SlotRef{}, 0, "", false
		}
		slot, side, key, ok := slotOf(x.Args[0], nil)
		if !ok || key != "" || side != x.State {
			return SlotRef{}, 0, "", false
		}
		return slot, side, x.Fn, true
	default:
		return SlotRef{}, 0, "", false
	}
}

// IsSimple reports whether c is expressible in the strict logic L2:
// true, false, or a conjunction of disequalities between plain slots of
// the two invocations.
func IsSimple(c Cond) bool {
	_, ok := AsSimple(c, nil)
	return ok
}

// IsOnlineCheckable reports whether c satisfies Definition 7: no function
// evaluated in state s1 may depend on the second invocation's arguments,
// return value, or state. Such conditions can be implemented by a forward
// gatekeeper because everything about m1 that later checks will need can
// be computed and logged when m1 executes.
func IsOnlineCheckable(c Cond) bool { return IsOnlineCheckableWith(c, nil) }

// IsOnlineCheckableWith is IsOnlineCheckable with a set of pure
// (state-independent) function names: a pure function attached to s1 is
// not really "a function of s1", so it may take second-invocation
// arguments without breaking online checkability (e.g. dist in the
// kd-tree specification).
func IsOnlineCheckableWith(c Cond, pure map[string]bool) bool {
	for _, t := range condTerms(c) {
		if !termOnlineCheckable(t, pure) {
			return false
		}
	}
	return true
}

func termOnlineCheckable(t Term, pure map[string]bool) bool {
	switch x := t.(type) {
	case FnTerm:
		if x.State == First && !pure[x.Fn] {
			for _, a := range x.Args {
				si := termSideInfoPure(a, pure)
				if si.val[Second] || si.stat[Second] {
					return false
				}
			}
		}
		for _, a := range x.Args {
			if !termOnlineCheckable(a, pure) {
				return false
			}
		}
		return true
	case ArithTerm:
		return termOnlineCheckable(x.L, pure) && termOnlineCheckable(x.R, pure)
	default:
		return true
	}
}

// termSideInfoPure is termSideInfo but pure functions do not count as
// state mentions of their attached side.
func termSideInfoPure(t Term, pure map[string]bool) sideInfo {
	var si sideInfo
	switch x := t.(type) {
	case ArgTerm:
		si.val[x.Side] = true
	case RetTerm:
		si.val[x.Side] = true
	case ConstTerm:
	case FnTerm:
		if !pure[x.Fn] {
			si.stat[x.State] = true
		}
		for _, a := range x.Args {
			si.merge(termSideInfoPure(a, pure))
		}
	case ArithTerm:
		si.merge(termSideInfoPure(x.L, pure))
		si.merge(termSideInfoPure(x.R, pure))
	}
	return si
}

// condTerms collects every term appearing in a condition.
func condTerms(c Cond) []Term {
	switch x := c.(type) {
	case TrueCond, FalseCond:
		return nil
	case NotCond:
		return condTerms(x.C)
	case AndCond:
		return append(condTerms(x.L), condTerms(x.R)...)
	case OrCond:
		return append(condTerms(x.L), condTerms(x.R)...)
	case CmpCond:
		return []Term{x.L, x.R}
	default:
		return nil
	}
}

// FirstStateFns collects the distinct (function name, argument terms)
// applications evaluated in state s1 within c. These are the primitive
// functions Cm1 that a forward gatekeeper must evaluate and log when the
// first method executes (§3.3.1).
func FirstStateFns(c Cond) []FnTerm {
	var out []FnTerm
	seen := map[string]bool{}
	var walkTerm func(t Term)
	walkTerm = func(t Term) {
		switch x := t.(type) {
		case FnTerm:
			if x.State == First {
				k := x.String()
				if !seen[k] {
					seen[k] = true
					out = append(out, x)
				}
			}
			for _, a := range x.Args {
				walkTerm(a)
			}
		case ArithTerm:
			walkTerm(x.L)
			walkTerm(x.R)
		}
	}
	for _, t := range condTerms(c) {
		walkTerm(t)
	}
	return out
}
