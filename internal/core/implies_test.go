package core

import (
	"math/rand"
	"testing"
)

func TestImpliesBasics(t *testing.T) {
	ne := Ne(Arg1(0), Arg2(0))
	other := Ne(Ret1(), Arg2(0))
	cases := []struct {
		a, b Cond
		want bool
	}{
		{False(), ne, true},
		{ne, True(), true},
		{ne, ne, true},
		{And(ne, other), ne, true},             // drop conjunct
		{ne, And(ne, other), false},            // cannot add conjunct
		{ne, Or(ne, other), true},              // widen to disjunction
		{Or(ne, other), ne, false},             // disjunction does not narrow
		{Or(ne, ne), ne, true},                 // both disjuncts imply
		{And(ne, other), And(other, ne), true}, // conjunct reordering
		{True(), ne, false},
		{Ne(Arg2(0), Arg1(0)), ne, true}, // operand symmetry
	}
	for _, c := range cases {
		if got := Implies(c.a, c.b); got != c.want {
			t.Errorf("Implies(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestImpliesKeyedRefinement(t *testing.T) {
	elem := Ne(Arg1(0), Arg2(0))
	part := Ne(Fn1("part", Arg1(0)), Fn2("part", Arg2(0)))
	if !Implies(part, elem) {
		t.Error("part(a) != part(b) should imply a != b")
	}
	if Implies(elem, part) {
		t.Error("a != b must not imply part(a) != part(b)")
	}
	// Different key functions on the two sides must not refine.
	mixed := Ne(Fn1("p", Arg1(0)), Fn2("q", Arg2(0)))
	if Implies(mixed, elem) {
		t.Error("mixed key functions should not be treated as refinement")
	}
}

func TestImpliesOrderingWeakening(t *testing.T) {
	a, b := Arg1(0), Arg2(0)
	cases := []struct {
		p, q Cond
		want bool
	}{
		{Lt(a, b), Le(a, b), true},  // x < y ⇒ x ≤ y
		{Lt(a, b), Ne(a, b), true},  // x < y ⇒ x ≠ y
		{Lt(a, b), Ne(b, a), true},  // ... and ≠ is symmetric
		{Gt(b, a), Le(a, b), true},  // flipped spelling of x < y
		{Eq(a, b), Le(a, b), true},  // x = y ⇒ x ≤ y
		{Eq(a, b), Ge(a, b), true},  // x = y ⇒ x ≥ y
		{Eq(b, a), Le(a, b), true},  // = is symmetric
		{Le(a, b), Lt(a, b), false}, // weakening only runs downhill
		{Ne(a, b), Lt(a, b), false},
		{Lt(a, b), Le(b, a), false}, // wrong direction
		{Lt(a, b), Eq(a, b), false},
		{Le(a, b), Ge(b, a), true}, // same comparison, flipped spelling
	}
	for _, c := range cases {
		if got := Implies(c.p, c.q); got != c.want {
			t.Errorf("Implies(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestImpliesEqualityCongruence(t *testing.T) {
	eq := Eq(Arg1(0), Arg2(0))
	keyed := Eq(Fn1("part", Arg1(0)), Fn1("part", Arg2(0)))
	if !Implies(eq, keyed) {
		t.Error("a = b should imply part(a) = part(b)")
	}
	if Implies(keyed, eq) {
		t.Error("part(a) = part(b) must not imply a = b")
	}
	// Same function against different states must not be congruent: rep@s1
	// and rep@s2 may disagree even on equal inputs.
	crossState := Eq(Fn1("rep", Arg1(0)), Fn2("rep", Arg2(0)))
	if Implies(eq, crossState) {
		t.Error("congruence must require the same state side")
	}
	// Different functions must not be congruent.
	mixed := Eq(Fn1("p", Arg1(0)), Fn1("q", Arg2(0)))
	if Implies(eq, mixed) {
		t.Error("congruence must require the same function")
	}
	// Congruence composes with the keyed refinement through Equivalent's
	// bidirectional check failing (one-way only).
	if Equivalent(eq, keyed) {
		t.Error("one-way implication must not be reported as equivalence")
	}
}

// TestCongruenceSoundUnderEval backs the congruence rule with evaluation
// against an actual state function that respects ValueEq.
func TestCongruenceSoundUnderEval(t *testing.T) {
	part := func(fn string, args []Value) (Value, error) {
		if fn != "part" || len(args) != 1 {
			return Value{}, nil
		}
		n, _ := args[0].AsInt()
		return VInt(n % 2), nil
	}
	eq := Eq(Arg1(0), Arg2(0))
	keyed := Eq(Fn1("part", Arg1(0)), Fn1("part", Arg2(0)))
	if !Implies(eq, keyed) {
		t.Fatal("congruence not proved")
	}
	for v1 := int64(0); v1 < 4; v1++ {
		for v2 := int64(0); v2 < 4; v2++ {
			env := &PairEnv{
				Inv1: Invocation{Args: Args1(VInt(v1))},
				Inv2: Invocation{Args: Args1(VInt(v2))},
				S1:   part,
			}
			av, err1 := Eval(eq, env)
			bv, err2 := Eval(keyed, env)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval error: %v/%v", err1, err2)
			}
			if av && !bv {
				t.Fatalf("unsound congruence at v1=%d v2=%d", v1, v2)
			}
		}
	}
}

func TestEquivalentSwapSymmetry(t *testing.T) {
	// kv's put~get condition is stored in both orientations in
	// examples/specs; the two spellings must be provably swap-equivalent.
	c12 := Ne(Arg1(0), Arg2(0))
	c21 := Ne(Arg2(0), Arg1(0))
	if !Equivalent(SwapSides(c12), c21) {
		t.Error("swap of a symmetric disequality should be equivalent to its mirror")
	}
	directed := Lt(Arg1(0), Arg2(0))
	if Equivalent(SwapSides(directed), directed) {
		t.Error("a directed ordering is not swap-symmetric")
	}
}

// TestImpliesSoundOnRandomConds backs the syntactic prover with exhaustive
// evaluation: whenever Implies says yes, no environment may satisfy a but
// not b.
func TestImpliesSoundOnRandomConds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	proved := 0
	for i := 0; i < 4000; i++ {
		a := randCond(r, 2)
		b := randCond(r, 2)
		if !Implies(a, b) {
			continue
		}
		proved++
		for v1 := int64(0); v1 < 3; v1++ {
			for r1 := int64(0); r1 < 3; r1++ {
				for v2 := int64(0); v2 < 3; v2++ {
					for r2 := int64(0); r2 < 3; r2++ {
						env := &PairEnv{
							Inv1: Invocation{Args: Args1(VInt(v1)), Ret: VInt(r1)},
							Inv2: Invocation{Args: Args1(VInt(v2)), Ret: VInt(r2)},
						}
						av, err1 := Eval(a, env)
						bv, err2 := Eval(b, env)
						if err1 != nil || err2 != nil {
							t.Fatalf("eval error: %v/%v", err1, err2)
						}
						if av && !bv {
							t.Fatalf("unsound: Implies(%s, %s) but env %v satisfies only antecedent", a, b, env)
						}
					}
				}
			}
		}
	}
	if proved == 0 {
		t.Error("prover never proved anything on random conditions; test is vacuous")
	}
}
