package core

import (
	"math/rand"
	"testing"
)

func TestImpliesBasics(t *testing.T) {
	ne := Ne(Arg1(0), Arg2(0))
	other := Ne(Ret1(), Arg2(0))
	cases := []struct {
		a, b Cond
		want bool
	}{
		{False(), ne, true},
		{ne, True(), true},
		{ne, ne, true},
		{And(ne, other), ne, true},             // drop conjunct
		{ne, And(ne, other), false},            // cannot add conjunct
		{ne, Or(ne, other), true},              // widen to disjunction
		{Or(ne, other), ne, false},             // disjunction does not narrow
		{Or(ne, ne), ne, true},                 // both disjuncts imply
		{And(ne, other), And(other, ne), true}, // conjunct reordering
		{True(), ne, false},
		{Ne(Arg2(0), Arg1(0)), ne, true}, // operand symmetry
	}
	for _, c := range cases {
		if got := Implies(c.a, c.b); got != c.want {
			t.Errorf("Implies(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestImpliesKeyedRefinement(t *testing.T) {
	elem := Ne(Arg1(0), Arg2(0))
	part := Ne(Fn1("part", Arg1(0)), Fn2("part", Arg2(0)))
	if !Implies(part, elem) {
		t.Error("part(a) != part(b) should imply a != b")
	}
	if Implies(elem, part) {
		t.Error("a != b must not imply part(a) != part(b)")
	}
	// Different key functions on the two sides must not refine.
	mixed := Ne(Fn1("p", Arg1(0)), Fn2("q", Arg2(0)))
	if Implies(mixed, elem) {
		t.Error("mixed key functions should not be treated as refinement")
	}
}

// TestImpliesSoundOnRandomConds backs the syntactic prover with exhaustive
// evaluation: whenever Implies says yes, no environment may satisfy a but
// not b.
func TestImpliesSoundOnRandomConds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	proved := 0
	for i := 0; i < 4000; i++ {
		a := randCond(r, 2)
		b := randCond(r, 2)
		if !Implies(a, b) {
			continue
		}
		proved++
		for v1 := int64(0); v1 < 3; v1++ {
			for r1 := int64(0); r1 < 3; r1++ {
				for v2 := int64(0); v2 < 3; v2++ {
					for r2 := int64(0); r2 < 3; r2++ {
						env := &PairEnv{
							Inv1: Invocation{Args: Args1(VInt(v1)), Ret: VInt(r1)},
							Inv2: Invocation{Args: Args1(VInt(v2)), Ret: VInt(r2)},
						}
						av, err1 := Eval(a, env)
						bv, err2 := Eval(b, env)
						if err1 != nil || err2 != nil {
							t.Fatalf("eval error: %v/%v", err1, err2)
						}
						if av && !bv {
							t.Fatalf("unsound: Implies(%s, %s) but env %v satisfies only antecedent", a, b, env)
						}
					}
				}
			}
		}
	}
	if proved == 0 {
		t.Error("prover never proved anything on random conditions; test is vacuous")
	}
}
