package core

import "fmt"

// Invocation is a recorded method invocation: the method name, its
// arguments and its return value. Arguments live in a flat inline Vec —
// recording an invocation of ≤ MaxInlineArgs arguments allocates
// nothing. For void methods Ret is the nil Value.
type Invocation struct {
	Method string
	Args   Vec
	Ret    Value
}

// NewInvocation builds an Invocation from an argument slice. Values are
// assumed already normalized (the tagged constructors normalize at
// construction time).
func NewInvocation(method string, args []Value, ret Value) Invocation {
	return Invocation{Method: method, Args: MakeVec(args...), Ret: ret}
}

// MakeInvocation builds an Invocation from a flat Vec without touching
// any slice.
func MakeInvocation(method string, args Vec, ret Value) Invocation {
	return Invocation{Method: method, Args: args, Ret: ret}
}

// StateFn resolves a named state function (such as rep, rank, loser, dist
// or part) against some abstract state. Implementations are provided by
// the ADT or by logs kept by a conflict detector.
type StateFn func(fn string, args []Value) (Value, error)

// PairEnv is the evaluation environment for a condition over a pair of
// invocations: the two invocations plus resolvers for functions of the two
// abstract states s1 and s2. Either resolver may be nil if the condition
// does not mention functions of that state.
type PairEnv struct {
	Inv1, Inv2 Invocation
	S1, S2     StateFn
}

// EvalTerm evaluates a term in the environment.
func EvalTerm(t Term, env *PairEnv) (Value, error) {
	switch x := t.(type) {
	case ArgTerm:
		inv := env.inv(x.Side)
		if x.Index < 0 || x.Index >= inv.Args.Len() {
			return Value{}, fmt.Errorf("core: %s has no argument %d", inv.Method, x.Index)
		}
		return inv.Args.At(x.Index), nil
	case RetTerm:
		return env.inv(x.Side).Ret, nil
	case ConstTerm:
		return x.V, nil
	case FnTerm:
		resolver := env.S1
		if x.State == Second {
			resolver = env.S2
		}
		if resolver == nil {
			return Value{}, fmt.Errorf("core: no resolver for state s%s (function %s)", x.State, x.Fn)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := EvalTerm(a, env)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return resolver(x.Fn, args)
	case ArithTerm:
		l, err := EvalTerm(x.L, env)
		if err != nil {
			return Value{}, err
		}
		r, err := EvalTerm(x.R, env)
		if err != nil {
			return Value{}, err
		}
		return arith(x.Op, l, r)
	default:
		return Value{}, fmt.Errorf("core: unknown term %T", t)
	}
}

func (env *PairEnv) inv(s Side) *Invocation {
	if s == First {
		return &env.Inv1
	}
	return &env.Inv2
}

// Eval evaluates a condition in the environment. It is the reference
// (interpreted) commutativity check; the synthesized detectors in
// abslock and gatekeeper are cross-validated against it.
func Eval(c Cond, env *PairEnv) (bool, error) {
	switch x := c.(type) {
	case TrueCond:
		return true, nil
	case FalseCond:
		return false, nil
	case NotCond:
		b, err := Eval(x.C, env)
		return !b, err
	case AndCond:
		l, err := Eval(x.L, env)
		if err != nil {
			return false, err
		}
		if !l {
			return false, nil
		}
		return Eval(x.R, env)
	case OrCond:
		l, err := Eval(x.L, env)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return Eval(x.R, env)
	case CmpCond:
		l, err := EvalTerm(x.L, env)
		if err != nil {
			return false, err
		}
		r, err := EvalTerm(x.R, env)
		if err != nil {
			return false, err
		}
		return Cmp(x.Op, l, r)
	default:
		return false, fmt.Errorf("core: unknown condition %T", c)
	}
}

// Cmp applies a comparison operator of L1 to two evaluated operands. It
// is the primitive Eval uses for CmpCond and is exported for compiled
// condition checkers that evaluate operands themselves.
func Cmp(op CmpOp, l, r Value) (bool, error) {
	switch op {
	case CmpEq:
		return ValueEq(l, r), nil
	case CmpNe:
		return !ValueEq(l, r), nil
	case CmpLt:
		return valueLess(l, r)
	case CmpGt:
		return valueLess(r, l)
	case CmpLe:
		gt, err := valueLess(r, l)
		return !gt, err
	case CmpGe:
		lt, err := valueLess(l, r)
		return !lt, err
	}
	return false, fmt.Errorf("core: unknown comparison %v", op)
}

// Arith applies an arithmetic connective of L1 to two evaluated
// operands, with the same numeric promotion rules as EvalTerm.
func Arith(op ArithOp, a, b Value) (Value, error) {
	return arith(op, a, b)
}
