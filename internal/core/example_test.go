package core_test

import (
	"fmt"

	"commlat/internal/core"
)

// Building the paper's figure 7 accumulator specification, classifying
// it and placing it in the lattice.
func Example() {
	sig := &core.ADTSig{Name: "accumulator", Methods: []core.MethodSig{
		{Name: "inc", Params: []string{"x"}},
		{Name: "read", HasRet: true},
	}}
	spec := core.NewSpec(sig)
	spec.Set("inc", "inc", core.True())
	spec.Set("inc", "read", core.False())
	spec.Set("read", "read", core.True())

	fmt.Println("class:", spec.Classify())
	fmt.Println("bottom ≤ spec:", core.Bottom(sig).LE(spec))
	// Output:
	// class: SIMPLE
	// bottom ≤ spec: true
}

// Evaluating a condition for a concrete pair of invocations: the set's
// figure 2 add~contains condition, in a state where the add mutated.
func ExampleEval() {
	cond := core.Or(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Eq(core.Ret1(), core.Lit(false)),
	)
	env := &core.PairEnv{
		Inv1: core.NewInvocation("add", []core.Value{core.VInt(7)}, core.VBool(true)),      // mutated
		Inv2: core.NewInvocation("contains", []core.Value{core.VInt(7)}, core.VBool(true)), // same key
	}
	commutes, _ := core.Eval(cond, env)
	fmt.Println("commute:", commutes)
	// Output:
	// commute: false
}

// StrengthenToSimple mechanically derives figure 3 from figure 2.
func ExampleStrengthenToSimple() {
	sig := &core.ADTSig{Name: "set", Methods: []core.MethodSig{
		{Name: "add", Params: []string{"x"}, HasRet: true},
		{Name: "contains", Params: []string{"x"}, HasRet: true},
	}}
	precise := core.NewSpec(sig)
	precise.Set("add", "add", core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false)))))
	precise.Set("add", "contains", core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Eq(core.Ret1(), core.Lit(false))))
	precise.Set("contains", "contains", core.True())

	simple := core.StrengthenToSimple(precise)
	fmt.Println(simple.Cond("add", "add"))
	fmt.Println(simple.Cond("add", "contains"))
	fmt.Println(simple.Cond("contains", "contains"))
	// Output:
	// v1[0] != v2[0]
	// v1[0] != v2[0]
	// true
}

// Meet and join combine lattice points.
func ExampleSpec_Meet() {
	sig := &core.ADTSig{Name: "t", Methods: []core.MethodSig{
		{Name: "m", Params: []string{"x"}, HasRet: true},
	}}
	a := core.NewSpec(sig)
	a.Set("m", "m", core.Ne(core.Arg1(0), core.Arg2(0)))
	b := core.NewSpec(sig)
	b.Set("m", "m", core.True())

	fmt.Println("a ≤ b:", a.LE(b))
	fmt.Println("meet:", a.Meet(b).Cond("m", "m"))
	fmt.Println("join:", a.Join(b).Cond("m", "m"))
	// Output:
	// a ≤ b: true
	// meet: v1[0] != v2[0]
	// join: true
}
