package core

import "fmt"

// Model is an executable reference implementation of an ADT's abstract
// state. It exists so that commutativity specifications can be validated
// by brute force: Definition 1 commutativity is decided by actually
// running both orders of a pair of invocations and comparing returns and
// abstract states. Every specification shipped in this repository is
// checked against a Model in its package's tests.
type Model interface {
	// Clone returns an independent deep copy of the model.
	Clone() Model
	// Apply invokes a method and returns its result (nil for void).
	Apply(method string, args []Value) (Value, error)
	// StateKey returns a canonical encoding of the *abstract* state, so
	// that two models represent the same abstract state iff their keys
	// are equal (e.g. the sorted element list of a set, regardless of
	// concrete representation).
	StateKey() string
	// StateFn evaluates a named helper function (rep, rank, loser, dist,
	// part, ...) against the model's current abstract state.
	StateFn(fn string, args []Value) (Value, error)
}

// Call names a method invocation to perform against a model.
type Call struct {
	Method string
	Args   []Value
}

func (c Call) String() string { return fmt.Sprintf("%s(%v)", c.Method, c.Args) }

// Commutes decides Definition 1 directly: starting from state m, it runs
// c1;c2 and c2;c1 on clones and reports whether both orders produce the
// same return values and the same abstract state.
func Commutes(m Model, c1, c2 Call) (bool, error) {
	a := m.Clone()
	r1a, err := a.Apply(c1.Method, c1.Args)
	if err != nil {
		return false, err
	}
	r2a, err := a.Apply(c2.Method, c2.Args)
	if err != nil {
		return false, err
	}
	b := m.Clone()
	r2b, err := b.Apply(c2.Method, c2.Args)
	if err != nil {
		return false, err
	}
	r1b, err := b.Apply(c1.Method, c1.Args)
	if err != nil {
		return false, err
	}
	return ValueEq(r1a, r1b) && ValueEq(r2a, r2b) && a.StateKey() == b.StateKey(), nil
}

// Violation describes a state and invocation pair for which a condition
// claimed commutativity but executing both orders disagreed.
type Violation struct {
	State  string
	C1, C2 Call
	R1, R2 Value
	Cond   Cond
}

func (v Violation) String() string {
	return fmt.Sprintf("state %s: %s/%v then %s/%v satisfied %q but does not commute",
		v.State, v.C1, v.R1, v.C2, v.R2, v.Cond)
}

// CheckCondSound validates a specification against a model by brute
// force: for every provided start state and every pair of candidate
// calls, if the spec's condition evaluates true for the back-to-back
// execution then the two invocations must commute per Definition 1.
// It returns all violations found (nil means the spec is sound on the
// explored space).
func CheckCondSound(spec *Spec, states []Model, calls []Call) ([]Violation, error) {
	var bad []Violation
	for _, st := range states {
		for _, c1 := range calls {
			for _, c2 := range calls {
				v, err := checkOnePair(spec, st, c1, c2)
				if err != nil {
					return bad, err
				}
				if v != nil {
					bad = append(bad, *v)
				}
			}
		}
	}
	return bad, nil
}

func checkOnePair(spec *Spec, st Model, c1, c2 Call) (*Violation, error) {
	s1 := st.Clone()
	pre1 := st.Clone()
	r1, err := s1.Apply(c1.Method, c1.Args)
	if err != nil {
		return nil, err
	}
	pre2 := s1.Clone()
	r2, err := s1.Apply(c2.Method, c2.Args)
	if err != nil {
		return nil, err
	}
	cond := spec.Cond(c1.Method, c2.Method)
	env := &PairEnv{
		Inv1: NewInvocation(c1.Method, c1.Args, r1),
		Inv2: NewInvocation(c2.Method, c2.Args, r2),
		S1:   pre1.StateFn,
		S2:   pre2.StateFn,
	}
	ok, err := Eval(cond, env)
	if err != nil {
		return nil, fmt.Errorf("evaluating %s for %s,%s: %w", cond, c1, c2, err)
	}
	if !ok {
		return nil, nil
	}
	comm, err := Commutes(st, c1, c2)
	if err != nil {
		return nil, err
	}
	if !comm {
		return &Violation{State: st.StateKey(), C1: c1, C2: c2, R1: r1, R2: r2, Cond: cond}, nil
	}
	return nil, nil
}

// Step is one invocation of a two-transaction history used by
// CheckSerializable.
type Step struct {
	Tx   int // 0 or 1
	Call Call
}

// SerializabilityReport is the outcome of replaying a history under a
// specification, mirroring Theorem 2 of the paper.
type SerializabilityReport struct {
	// CondsHeld is true when every cross-transaction pair of invocations
	// satisfied its commutativity condition (evaluated with s1/s2 bound
	// to each invocation's actual pre-state, as the runtime would).
	CondsHeld bool
	// SerialOK is true when some serial order (tx1;tx0 or tx0;tx1)
	// reproduces every recorded return value and the interleaved final
	// abstract state. Theorem 2 promises SerialOK whenever CondsHeld.
	SerialOK bool
}

// CheckSerializable replays an interleaved two-transaction history on the
// model, evaluates all cross-transaction commutativity conditions, and
// checks whether a serial order is equivalent. Tests use it to validate
// that specifications are serializability-sound (Theorem 2): whenever
// CondsHeld, SerialOK must also hold.
func CheckSerializable(initial Model, spec *Spec, history []Step) (SerializabilityReport, error) {
	var rep SerializabilityReport
	type record struct {
		step Step
		pre  Model
		ret  Value
	}
	m := initial.Clone()
	recs := make([]record, 0, len(history))
	for _, st := range history {
		pre := m.Clone()
		ret, err := m.Apply(st.Call.Method, st.Call.Args)
		if err != nil {
			return rep, err
		}
		recs = append(recs, record{step: st, pre: pre, ret: ret})
	}
	finalKey := m.StateKey()

	rep.CondsHeld = true
	for i := range recs {
		for j := i + 1; j < len(recs); j++ {
			if recs[i].step.Tx == recs[j].step.Tx {
				continue
			}
			env := &PairEnv{
				Inv1: NewInvocation(recs[i].step.Call.Method, recs[i].step.Call.Args, recs[i].ret),
				Inv2: NewInvocation(recs[j].step.Call.Method, recs[j].step.Call.Args, recs[j].ret),
				S1:   recs[i].pre.StateFn,
				S2:   recs[j].pre.StateFn,
			}
			ok, err := Eval(spec.Cond(recs[i].step.Call.Method, recs[j].step.Call.Method), env)
			if err != nil {
				return rep, err
			}
			if !ok {
				rep.CondsHeld = false
			}
		}
	}

	trySerial := func(firstTx int) (bool, error) {
		m := initial.Clone()
		for pass := 0; pass < 2; pass++ {
			tx := firstTx
			if pass == 1 {
				tx = 1 - firstTx
			}
			for _, r := range recs {
				if r.step.Tx != tx {
					continue
				}
				ret, err := m.Apply(r.step.Call.Method, r.step.Call.Args)
				if err != nil {
					return false, err
				}
				if !ValueEq(ret, r.ret) {
					return false, nil
				}
			}
		}
		return m.StateKey() == finalKey, nil
	}
	for _, first := range []int{1, 0} {
		ok, err := trySerial(first)
		if err != nil {
			return rep, err
		}
		if ok {
			rep.SerialOK = true
			break
		}
	}
	return rep, nil
}
