package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randCond builds a random condition over a small term vocabulary so that
// property tests can explore the condition algebra.
func randCond(r *rand.Rand, depth int) Cond {
	terms := []Term{Arg1(0), Arg2(0), Ret1(), Ret2(), Lit(0), Lit(1)}
	t := func() Term { return terms[r.Intn(len(terms))] }
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return True()
		case 1:
			return False()
		case 2:
			return Eq(t(), t())
		default:
			return Ne(t(), t())
		}
	}
	switch r.Intn(6) {
	case 0:
		return Not(randCond(r, depth-1))
	case 1:
		return And(randCond(r, depth-1), randCond(r, depth-1))
	case 2:
		return Or(randCond(r, depth-1), randCond(r, depth-1))
	case 3:
		switch r.Intn(4) {
		case 0:
			return Lt(t(), t())
		case 1:
			return Gt(t(), t())
		case 2:
			return Le(t(), t())
		default:
			return Ge(t(), t())
		}
	default:
		return randCond(r, 0)
	}
}

// randEnv yields an environment binding all vocabulary slots to small ints.
func randEnv(r *rand.Rand) *PairEnv {
	v := func() Value { return VInt(int64(r.Intn(3))) }
	return &PairEnv{
		Inv1: Invocation{Method: "m1", Args: Args1(v()), Ret: v()},
		Inv2: Invocation{Method: "m2", Args: Args1(v()), Ret: v()},
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		c := randCond(r, 3)
		s := Simplify(c)
		for j := 0; j < 8; j++ {
			env := randEnv(r)
			want, err1 := Eval(c, env)
			got, err2 := Eval(s, env)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval error: %v / %v", err1, err2)
			}
			if want != got {
				t.Fatalf("Simplify changed semantics:\n  orig %s\n  simp %s\n  env %+v", c, s, env)
			}
		}
	}
}

func TestSimplifyConstants(t *testing.T) {
	cases := []struct {
		in   Cond
		want Cond
	}{
		{And(True(), True()), True()},
		{And(True(), False()), False()},
		{Or(False(), False()), False()},
		{Or(True(), False()), True()},
		{Not(True()), False()},
		{Not(False()), True()},
		{Not(Not(Eq(Arg1(0), Arg2(0)))), Eq(Arg1(0), Arg2(0))},
		{And(Ne(Arg1(0), Arg2(0)), Ne(Arg1(0), Arg2(0))), Ne(Arg1(0), Arg2(0))},
		{Not(Eq(Arg1(0), Arg2(0))), Ne(Arg1(0), Arg2(0))},
		{Not(Lt(Arg1(0), Arg2(0))), Ge(Arg1(0), Arg2(0))},
	}
	for _, c := range cases {
		if got := Simplify(c.in); condKey(got) != condKey(c.want) {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestCondKeySymmetry(t *testing.T) {
	if condKey(Eq(Arg1(0), Arg2(0))) != condKey(Eq(Arg2(0), Arg1(0))) {
		t.Error("Eq operand symmetry not normalized")
	}
	if condKey(Lt(Arg1(0), Arg2(0))) != condKey(Gt(Arg2(0), Arg1(0))) {
		t.Error("Lt/Gt flip not normalized")
	}
	if condKey(And(True(), Eq(Arg1(0), Ret2()))) == condKey(Eq(Arg1(0), Ret1())) {
		t.Error("distinct conditions share a key")
	}
}

func TestCondEqualFlattening(t *testing.T) {
	a := And(Ne(Arg1(0), Arg2(0)), And(Ne(Ret1(), Arg2(0)), Ne(Arg1(0), Arg2(0))))
	b := And(Ne(Ret1(), Arg2(0)), Ne(Arg1(0), Arg2(0)))
	if !CondEqual(a, b) {
		t.Errorf("flattened conjunctions should be equal: %s vs %s", a, b)
	}
	if CondEqual(a, Ne(Arg1(0), Arg2(0))) {
		t.Error("dropping a conjunct should not be equal")
	}
}

func TestSwapSidesInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		c := randCond(r, 3)
		if condKey(SwapSides(SwapSides(c))) != condKey(c) {
			t.Fatalf("swap not an involution for %s", c)
		}
	}
}

func TestSwapSidesSemantics(t *testing.T) {
	// Evaluating swap(c) with inverted invocations must match c.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		c := randCond(r, 3)
		env := randEnv(r)
		swapped := &PairEnv{Inv1: env.Inv2, Inv2: env.Inv1, S1: env.S2, S2: env.S1}
		a, err1 := Eval(c, env)
		b, err2 := Eval(SwapSides(c), swapped)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval error: %v / %v", err1, err2)
		}
		if a != b {
			t.Fatalf("SwapSides semantics broken for %s", c)
		}
	}
}

func TestAndOrEmpty(t *testing.T) {
	if _, ok := And().(TrueCond); !ok {
		t.Error("And() should be true")
	}
	if _, ok := Or().(FalseCond); !ok {
		t.Error("Or() should be false")
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	c := And(Ne(Arg1(0), Arg2(0)), Ne(Ret1(), Ret2()), True())
	if got := len(Conjuncts(c)); got != 3 {
		t.Errorf("Conjuncts: got %d leaves, want 3", got)
	}
	d := Or(Eq(Arg1(0), Arg2(0)), False())
	if got := len(Disjuncts(d)); got != 2 {
		t.Errorf("Disjuncts: got %d leaves, want 2", got)
	}
}

func TestCondStringStable(t *testing.T) {
	c := Or(Ne(Arg1(0), Arg2(0)), And(Eq(Ret1(), Lit(false)), Eq(Ret2(), Lit(false))))
	want := "(v1[0] != v2[0] || (r1 = false && r2 = false))"
	if c.String() != want {
		t.Errorf("String() = %q, want %q", c.String(), want)
	}
}

func TestQuickSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		c := randCond(rr, 4)
		s := Simplify(c)
		return condKey(Simplify(s)) == condKey(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}
