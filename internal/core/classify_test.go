package core

import "testing"

func TestClassifySimple(t *testing.T) {
	cases := []Cond{
		True(),
		False(),
		Ne(Arg1(0), Arg2(0)),
		And(Ne(Arg1(0), Arg2(0)), Ne(Ret1(), Arg2(0))),
		And(Ne(Arg2(0), Arg1(0))), // reversed operand order still SIMPLE
	}
	for _, c := range cases {
		if got := Classify(c); got != ClassSimple {
			t.Errorf("Classify(%s) = %v, want SIMPLE", c, got)
		}
	}
}

func TestClassifyNotSimple(t *testing.T) {
	cases := []Cond{
		Eq(Arg1(0), Arg2(0)),                             // equality, not disequality
		Or(Ne(Arg1(0), Arg2(0)), Eq(Ret1(), Lit(false))), // disjunction
		Ne(Arg1(0), Ret1()),                              // both operands side 1
		Ne(Arg1(0), Lit(3)),                              // constant operand
		Gt(Arg1(0), Arg2(0)),                             // ordering
		Ne(Fn1("part", Arg1(0)), Fn2("part", Arg2(0))),   // keyed (partition) form is not strict L2
	}
	for _, c := range cases {
		if IsSimple(c) {
			t.Errorf("IsSimple(%s) = true, want false", c)
		}
	}
}

func TestAsSimpleKeyed(t *testing.T) {
	c := Ne(Fn1("part", Arg1(0)), Fn2("part", Arg2(0)))
	form, ok := AsSimple(c, map[string]bool{"part": true})
	if !ok {
		t.Fatalf("keyed AsSimple failed for %s", c)
	}
	if form.Kind != SimpleConj || len(form.Conjuncts) != 1 {
		t.Fatalf("unexpected form %+v", form)
	}
	cj := form.Conjuncts[0]
	if cj.Key != "part" || cj.X.IsRet || cj.Y.IsRet {
		t.Errorf("unexpected conjunct %+v", cj)
	}
	// Mismatched keys must fail.
	bad := Ne(Fn1("part", Arg1(0)), Fn2("other", Arg2(0)))
	if _, ok := AsSimple(bad, map[string]bool{"part": true, "other": true}); ok {
		t.Error("mismatched key functions should not be SIMPLE")
	}
}

func TestAsSimpleSlotOrientation(t *testing.T) {
	// Ne(second, first) should normalize to X=first-side slot.
	form, ok := AsSimple(Ne(Arg2(1), Ret1()), nil)
	if !ok {
		t.Fatal("AsSimple failed")
	}
	cj := form.Conjuncts[0]
	if !cj.X.IsRet || cj.Y.IsRet || cj.Y.Arg != 1 {
		t.Errorf("orientation wrong: %+v", cj)
	}
}

func TestClassifyOnline(t *testing.T) {
	// kd-tree style: dist(s1; a2, r1) — a function of s1 whose arguments
	// come from the second invocation is NOT online-checkable...
	notOnline := Gt(Fn1("rep", Arg2(0)), Ret1())
	if IsOnlineCheckable(notOnline) {
		t.Errorf("%s should not be online-checkable", notOnline)
	}
	// ...but a function of s1 over first-invocation values is, and a
	// function of s2 may use anything.
	online := And(
		Gt(Fn1("dist", Arg1(0), Ret1()), Lit(0)),
		Gt(Fn2("dist", Arg1(0), Arg2(0)), Lit(0)),
	)
	if !IsOnlineCheckable(online) {
		t.Errorf("%s should be online-checkable", online)
	}
	if Classify(online) != ClassOnline {
		t.Errorf("Classify(%s) = %v, want ONLINE", online, Classify(online))
	}
}

func TestClassifyGeneral(t *testing.T) {
	// union-find condition (2): rep evaluated in s1 on the *second*
	// invocation's argument.
	c := Ne(Fn1("rep", Arg2(0)), Fn1("loser", Arg1(0), Arg1(1)))
	if got := Classify(c); got != ClassGeneral {
		t.Errorf("Classify(%s) = %v, want GENERAL", c, got)
	}
}

func TestClassifyNestedFnOnline(t *testing.T) {
	// A first-state function nested inside a second-state function is
	// fine as long as the first-state function's args stay on side 1.
	ok := Eq(Fn2("f", Fn1("g", Arg1(0))), Ret2())
	if !IsOnlineCheckable(ok) {
		t.Errorf("%s should be online-checkable", ok)
	}
	// Second-state function feeding a first-state function is not.
	bad := Eq(Fn1("g", Fn2("f", Arg1(0))), Ret2())
	if IsOnlineCheckable(bad) {
		t.Errorf("%s should not be online-checkable", bad)
	}
}

func TestFirstStateFns(t *testing.T) {
	c := Or(
		Gt(Fn1("dist", Arg1(0), Ret1()), Fn2("dist", Arg1(0), Arg2(0))),
		And(Eq(Fn1("dist", Arg1(0), Ret1()), Lit(0)), Ne(Fn1("rank", Arg1(0)), Lit(1))),
	)
	fns := FirstStateFns(c)
	if len(fns) != 2 {
		t.Fatalf("FirstStateFns found %d fns, want 2 (dedup): %v", len(fns), fns)
	}
	names := map[string]bool{}
	for _, f := range fns {
		names[f.Fn] = true
	}
	if !names["dist"] || !names["rank"] {
		t.Errorf("unexpected fn set %v", names)
	}
}

func TestClassString(t *testing.T) {
	if ClassSimple.String() != "SIMPLE" || ClassOnline.String() != "ONLINE-CHECKABLE" || ClassGeneral.String() != "GENERAL" {
		t.Error("Class String() labels wrong")
	}
}

func TestSlotRefString(t *testing.T) {
	if (SlotRef{IsRet: true}).String() != "ret" {
		t.Error("ret slot name")
	}
	if (SlotRef{Arg: 0}).String() != "x" {
		t.Error("first arg slot should be x")
	}
	if (SlotRef{Arg: 1}).String() != "x1" {
		t.Error("second arg slot should be x1")
	}
}
