package core

// GuardedForm is the shape of a GUARDED-SIMPLE condition, the "more
// liberal abstract locking scheme that allows simple predicates to be
// evaluated before acquiring a lock" the paper's §3.2 footnote leaves to
// future work:
//
//	D ∨ (P1 ∧ P2)
//
// where D is a (possibly empty) conjunction of slot disequalities and
// each Pi is a predicate over invocation i's own arguments and return
// value only (no state functions). Such a condition can be implemented
// by locks with per-invocation mode selection: invocation i acquires a
// weak mode when Pi holds and a strong mode otherwise; weak is
// compatible with weak, everything else conflicts — so two invocations
// on a shared datum proceed exactly when P1 ∧ P2, and otherwise exactly
// when D. The precise set specification of figure 2 has this shape
// (Pi = "ri = false"), so liberal locking implements it — something
// plain abstract locking provably cannot (Theorem 1).
type GuardedForm struct {
	Kind      SimpleKind       // SimpleTrue / SimpleFalse / SimpleConj
	Conjuncts []SimpleConjunct // D
	P1, P2    Cond             // side-local guards; False when there is no weak path
}

// AsGuardedSimple attempts to view c as a GUARDED-SIMPLE condition.
// Plain SIMPLE conditions qualify with P1 = P2 = false (no weak path).
func AsGuardedSimple(c Cond) (*GuardedForm, bool) {
	c = Simplify(c)
	if form, ok := AsSimple(c, nil); ok {
		return &GuardedForm{Kind: form.Kind, Conjuncts: form.Conjuncts, P1: False(), P2: False()}, true
	}
	// Split disjuncts into slot disequalities (D) and at most one
	// side-splittable residue (P1 ∧ P2).
	var conj []SimpleConjunct
	var residue Cond
	for _, d := range Disjuncts(c) {
		if form, ok := AsSimple(d, nil); ok && form.Kind == SimpleConj {
			conj = append(conj, form.Conjuncts...)
			continue
		}
		if residue != nil {
			return nil, false // more than one non-disequality disjunct
		}
		residue = d
	}
	if residue == nil {
		return nil, false // handled by the AsSimple fast path above
	}
	var p1s, p2s []Cond
	for _, p := range Conjuncts(residue) {
		side, ok := sideLocal(p)
		if !ok {
			return nil, false
		}
		if side == First {
			p1s = append(p1s, p)
		} else {
			p2s = append(p2s, p)
		}
	}
	return &GuardedForm{
		Kind:      SimpleConj,
		Conjuncts: conj,
		P1:        Simplify(And(p1s...)),
		P2:        Simplify(And(p2s...)),
	}, true
}

// sideLocal reports which single invocation side a predicate depends on
// (predicates over constants only count as First). It rejects state
// functions — a lock manager cannot evaluate them.
func sideLocal(c Cond) (Side, bool) {
	var si sideInfo
	for _, t := range condTerms(c) {
		if hasFn(t) {
			return 0, false
		}
		si.merge(termSideInfo(t))
	}
	switch {
	case si.val[First] && si.val[Second]:
		return 0, false
	case si.val[Second]:
		return Second, true
	default:
		return First, true
	}
}

func hasFn(t Term) bool {
	switch x := t.(type) {
	case FnTerm:
		return true
	case ArithTerm:
		return hasFn(x.L) || hasFn(x.R)
	default:
		return false
	}
}

// OwnEnv builds the evaluation environment for a side-local guard over a
// single invocation (bound as invocation 1).
func OwnEnv(inv Invocation) *PairEnv {
	return &PairEnv{Inv1: inv}
}

// ToFirstSide rewrites a side-2-local predicate to reference invocation
// 1, so a lock manager can evaluate any guard against the invoking
// transaction's own invocation uniformly.
func ToFirstSide(c Cond) Cond { return SwapSides(c) }

// MentionsRet reports whether the condition references the return value
// of the given side anywhere (used to schedule guarded lock acquisitions
// after execution).
func MentionsRet(c Cond, side Side) bool {
	for _, t := range condTerms(c) {
		if termMentionsRet(t, side) {
			return true
		}
	}
	return false
}

func termMentionsRet(t Term, side Side) bool {
	switch x := t.(type) {
	case RetTerm:
		return x.Side == side
	case FnTerm:
		for _, a := range x.Args {
			if termMentionsRet(a, side) {
				return true
			}
		}
	case ArithTerm:
		return termMentionsRet(x.L, side) || termMentionsRet(x.R, side)
	}
	return false
}
