package core

import "fmt"

// SubstTerms returns c with every term whose canonical string appears in
// sub replaced by a constant holding the recorded value. Gatekeepers use
// this to close a condition over values they computed earlier (logged
// primitive-function results, pre-evaluated state functions) before
// handing it to Eval.
func SubstTerms(c Cond, sub map[string]Value) Cond {
	if len(sub) == 0 {
		return c
	}
	switch x := c.(type) {
	case TrueCond, FalseCond:
		return x
	case NotCond:
		return NotCond{C: SubstTerms(x.C, sub)}
	case AndCond:
		return AndCond{L: SubstTerms(x.L, sub), R: SubstTerms(x.R, sub)}
	case OrCond:
		return OrCond{L: SubstTerms(x.L, sub), R: SubstTerms(x.R, sub)}
	case CmpCond:
		return CmpCond{Op: x.Op, L: substTerm(x.L, sub), R: substTerm(x.R, sub)}
	default:
		panic(fmt.Sprintf("core: unknown condition %T", c))
	}
}

func substTerm(t Term, sub map[string]Value) Term {
	if v, ok := sub[termKey(t)]; ok {
		return ConstTerm{V: v}
	}
	switch x := t.(type) {
	case FnTerm:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = substTerm(a, sub)
		}
		return FnTerm{Fn: x.Fn, State: x.State, Args: args}
	case ArithTerm:
		return ArithTerm{Op: x.Op, L: substTerm(x.L, sub), R: substTerm(x.R, sub)}
	default:
		return t
	}
}

// TermKey exposes the canonical string key of a term, the key space used
// by SubstTerms.
func TermKey(t Term) string { return termKey(t) }
