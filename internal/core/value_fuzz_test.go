package core

import (
	"math"
	"testing"
)

// This fuzz test pins the tagged value representation to the boxed
// semantics it replaced: ValueEq, Compare and MapKey on tagged Values
// must agree with the original `Value = any` implementation (reproduced
// below as the oracle) for every mix of spellings — int64 vs float64
// spellings of the same number, NaN, ±0, integral floats at and beyond
// ±2^53, strings, and comparable user types.

// boxedNorm is the old Norm over `any`.
func boxedNorm(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// boxedValueEq is the old ValueEq over `any`.
func boxedValueEq(a, b any) bool {
	a, b = boxedNorm(a), boxedNorm(b)
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case float64:
			return float64(x) == y
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return x == float64(y)
		case float64:
			return x == y
		}
	}
	return a == b
}

func boxedToFloat(v any) (float64, bool) {
	switch x := boxedNorm(v).(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// boxedCompare is the old three-way numeric ordering: ok=false mirrors
// the old valueLess error for non-numeric operands.
func boxedCompare(a, b any) (int, bool) {
	af, aok := boxedToFloat(a)
	bf, bok := boxedToFloat(b)
	if !aok || !bok {
		return 0, false
	}
	switch {
	case af < bf:
		return -1, true
	case bf < af:
		return 1, true
	default:
		return 0, true
	}
}

// boxedNaNKey stands in for the old NaNKey struct.
type boxedNaNKey struct{}

// boxedMapKey is the old MapKey over `any`.
func boxedMapKey(v any) (any, bool) {
	switch x := boxedNorm(v).(type) {
	case nil:
		return nil, true
	case bool:
		return x, true
	case string:
		return x, true
	case int64:
		return x, true
	case float64:
		if math.IsNaN(x) {
			return boxedNaNKey{}, true
		}
		if x == math.Trunc(x) {
			if x > -maxExactFloatKey && x < maxExactFloatKey {
				return int64(x), true
			}
			return nil, false
		}
		return x, true
	default:
		return nil, false
	}
}

// fuzzUser is the comparable user type exercising the ref escape hatch.
type fuzzUser struct{ X, Y int64 }

// spellValue derives one boxed `any` from the fuzzer-chosen selector and
// raw material. The universe deliberately includes every hazard named in
// the representation's contracts.
func spellValue(sel uint8, i int64, f float64, s string) any {
	switch sel % 16 {
	case 0:
		return nil
	case 1:
		return i&1 == 0
	case 2:
		return i
	case 3:
		return int(int32(i)) // narrower int spelling
	case 4:
		return uint64(i) // unsigned spelling, wraps through int64
	case 5:
		return f
	case 6:
		return float32(f) // loses precision through Norm
	case 7:
		return float64(i) // integral float spelling of an int
	case 8:
		return math.NaN()
	case 9:
		return math.Copysign(0, -1) // -0.0 (ValueEq-equal to +0.0 and int 0)
	case 10:
		return math.Inf(int(i%2)*2 - 1)
	case 11:
		// Integral floats straddling the ±2^53 exactness boundary.
		return float64(int64(1)<<53) + float64(i%8)
	case 12:
		return math.Trunc(f) // integral float from the float material
	case 13:
		return s
	case 14:
		return fuzzUser{X: i, Y: int64(len(s))}
	default:
		return i % 4 // tiny ints: collisions with float spellings likely
	}
}

func FuzzValueSemanticsMatchBoxed(f *testing.F) {
	f.Add(uint8(2), uint8(7), int64(5), 5.0, "a", "a")     // int 5 vs float 5.0
	f.Add(uint8(8), uint8(8), int64(0), 0.0, "", "")       // NaN vs NaN
	f.Add(uint8(9), uint8(2), int64(0), 0.0, "", "")       // -0.0 vs int 0
	f.Add(uint8(11), uint8(2), int64(1)<<53, 0.0, "", "")  // 2^53 float vs int
	f.Add(uint8(13), uint8(13), int64(0), 0.0, "x", "x")   // equal strings
	f.Add(uint8(14), uint8(14), int64(3), 0.0, "ab", "ab") // user type
	f.Add(uint8(6), uint8(5), int64(0), 1.5, "", "")       // float32 rounding
	f.Add(uint8(10), uint8(10), int64(0), 0.0, "", "")     // ±Inf
	f.Fuzz(func(t *testing.T, selA, selB uint8, i int64, fl float64, s1, s2 string) {
		ba := spellValue(selA, i, fl, s1)
		bb := spellValue(selB, i+int64(selB%3), fl, s2)
		va, vb := V(ba), V(bb)

		// ValueEq must agree with the boxed semantics.
		if got, want := ValueEq(va, vb), boxedValueEq(ba, bb); got != want {
			t.Fatalf("ValueEq(%#v, %#v) = %v, boxed semantics say %v", ba, bb, got, want)
		}

		// Compare must agree in both definedness and result.
		gotC, gotErr := Compare(va, vb)
		wantC, wantOK := boxedCompare(ba, bb)
		if (gotErr == nil) != wantOK {
			t.Fatalf("Compare(%#v, %#v) err=%v, boxed definedness %v", ba, bb, gotErr, wantOK)
		}
		if gotErr == nil && gotC != wantC {
			t.Fatalf("Compare(%#v, %#v) = %d, boxed semantics say %d", ba, bb, gotC, wantC)
		}

		// MapKey must agree on keyability, and the keys must induce the
		// same partition as the old keys did.
		ka, okA := MapKey(va)
		kb, okB := MapKey(vb)
		bka, bokA := boxedMapKey(ba)
		bkb, bokB := boxedMapKey(bb)
		if okA != bokA || okB != bokB {
			t.Fatalf("MapKey keyability: (%v,%v) vs boxed (%v,%v) for %#v, %#v", okA, okB, bokA, bokB, ba, bb)
		}
		if okA && okB {
			if (ka == kb) != (bka == bkb) {
				t.Fatalf("MapKey partition: tagged keys equal=%v, boxed keys equal=%v for %#v, %#v",
					ka == kb, bka == bkb, ba, bb)
			}
			// And the documented contract: ValueEq values share a key.
			if ValueEq(va, vb) && ka != kb {
				t.Fatalf("ValueEq(%#v, %#v) but MapKeys differ: %v vs %v", ba, bb, ka, kb)
			}
		}

		// Hash must respect ValueEq on keyable values (the index relies
		// on it via MapKey, but hashing the canonical key must agree).
		if okA && okB && ka == kb && ka.Hash() != kb.Hash() {
			t.Fatalf("equal keys hash differently for %#v, %#v", ba, bb)
		}
	})
}
