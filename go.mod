module commlat

go 1.22
