// Package commlat is a Go implementation of "Exploiting the Commutativity
// Lattice" (Kulkarni, Nguyen, Prountzos, Sui, Pingali — PLDI 2011): a
// framework for semantic conflict detection in speculative parallel
// programs.
//
// The core idea: for an abstract data type, a commutativity specification
// assigns each pair of methods a predicate over the two invocations'
// arguments, return values and abstract states; two concurrently executing
// transactions are serializable if all their cross-invocations satisfy
// these predicates. Specifications form a lattice ordered by implication,
// and a specification's position constrains how its conflict detector can
// be implemented:
//
//   - SIMPLE specifications (conjunctions of argument disequalities)
//     synthesize into abstract locking schemes — multi-mode locks with a
//     generated compatibility matrix (Synthesize/Reduce).
//   - ONLINE-CHECKABLE specifications run under forward gatekeepers,
//     which log primitive-function results per invocation
//     (NewForwardGatekeeper).
//   - Arbitrary specifications run under general gatekeepers, which roll
//     the structure back to evaluate conditions in earlier states
//     (NewGeneralGatekeeper).
//
// Moving down the lattice (StrongerByPartition, Bottom) trades precision
// — and thus exposed parallelism — for cheaper detection; Implies/LE
// order the points; Meet/Join combine them.
//
// This package is the public facade over the implementation in
// internal/: the condition language and lattice (internal/core), the
// detector constructions (internal/abslock, internal/gatekeeper), the
// speculative executor (internal/engine), ready-made ADTs with validated
// specifications (internal/adt/...), the paper's three case-study
// applications (internal/apps/...), a ParaMeter-style parallelism
// profiler (internal/parameter) and the experiment harness
// (internal/bench, cmd/commlat).
package commlat

import (
	"commlat/internal/abslock"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
)

// Core condition-language types (see internal/core for full docs).
type (
	// Value is the dynamic value domain of conditions.
	Value = core.Value
	// Term is a value-producing expression of the logic L1.
	Term = core.Term
	// Cond is a commutativity condition.
	Cond = core.Cond
	// Spec is a commutativity specification: a condition per method pair.
	Spec = core.Spec
	// ADTSig describes an abstract data type's methods.
	ADTSig = core.ADTSig
	// MethodSig describes one method.
	MethodSig = core.MethodSig
	// Invocation is a recorded method invocation.
	Invocation = core.Invocation
	// PairEnv is a condition's evaluation environment.
	PairEnv = core.PairEnv
	// Class ranks a condition: SIMPLE, ONLINE-CHECKABLE or GENERAL.
	Class = core.Class
	// Model is an executable reference used to validate specifications.
	Model = core.Model
	// Args is a flat argument vector (inline up to 4 values).
	Args = core.Vec
)

// Tagged-value constructors: V normalizes any Go value into the inline
// tagged representation; MakeArgs builds an argument vector.
var (
	V        = core.V
	MakeArgs = core.MakeVec
)

// Classification results.
const (
	ClassSimple  = core.ClassSimple
	ClassOnline  = core.ClassOnline
	ClassGeneral = core.ClassGeneral
)

// Term constructors.
var (
	Arg1 = core.Arg1
	Arg2 = core.Arg2
	Ret1 = core.Ret1
	Ret2 = core.Ret2
	Lit  = core.Lit
	Fn1  = core.Fn1
	Fn2  = core.Fn2
)

// Condition constructors and connectives.
var (
	True  = core.True
	False = core.False
	Not   = core.Not
	And   = core.And
	Or    = core.Or
	Eq    = core.Eq
	Ne    = core.Ne
	Lt    = core.Lt
	Gt    = core.Gt
	Le    = core.Le
	Ge    = core.Ge
)

// Specification and lattice operations.
var (
	// NewSpec creates an empty (all-false) specification.
	NewSpec = core.NewSpec
	// Bottom is the ⊥ specification: nothing commutes (a global lock).
	Bottom = core.Bottom
	// Classify returns a condition's class.
	Classify = core.Classify
	// Implies is the sound implication prover ordering lattice points.
	Implies = core.Implies
	// Eval evaluates a condition against a pair of invocations.
	Eval = core.Eval
	// CheckCondSound brute-force-validates a specification on a model.
	CheckCondSound = core.CheckCondSound
	// StrengthenToSimple derives the strongest SIMPLE specification
	// below a given one (§4.1's discipline, automated) — always
	// synthesizable into abstract locks.
	StrengthenToSimple = core.StrengthenToSimple
)

// Transactions and speculative execution (see internal/engine).
type (
	// Tx is a speculative transaction with an undo log.
	Tx = engine.Tx
	// Stats summarizes a speculative run.
	Stats = engine.Stats
	// Options configures a speculative run.
	Options = engine.Options
)

var (
	// NewTx creates a fresh transaction.
	NewTx = engine.NewTx
	// IsConflict reports whether an error denotes a speculation conflict.
	IsConflict = engine.IsConflict
)

// Abstract locking (§3.2).
type (
	// LockScheme is a synthesized abstract-locking conflict detector.
	LockScheme = abslock.Scheme
	// LockManager enforces a scheme at run time.
	LockManager = abslock.Manager
	// KeyFunc implements a pure key function for keyed (partition) locks.
	KeyFunc = abslock.KeyFunc
)

var (
	// Synthesize builds the sound and complete locking scheme for a
	// SIMPLE specification (Theorem 1).
	Synthesize = abslock.Synthesize
	// SynthesizeLiberal builds the guarded-mode ("liberal", §3.2
	// footnote 6) locking scheme for GUARDED-SIMPLE specifications such
	// as the precise set spec of figure 2.
	SynthesizeLiberal = abslock.SynthesizeLiberal
	// NewLockManager runs a synthesized scheme.
	NewLockManager = abslock.NewManager
)

// Gatekeeping (§3.3).
type (
	// ForwardGatekeeper implements ONLINE-CHECKABLE specifications.
	ForwardGatekeeper = gatekeeper.Forward
	// GeneralGatekeeper implements arbitrary L1 specifications.
	GeneralGatekeeper = gatekeeper.General
	// Effect is a forward-gatekept invocation's result and inverse.
	Effect = gatekeeper.Effect
	// GEffect adds the exact redo a general gatekeeper needs.
	GEffect = gatekeeper.GEffect
)

var (
	// NewForwardGatekeeper builds a forward gatekeeper for a spec.
	NewForwardGatekeeper = gatekeeper.NewForward
	// NewGeneralGatekeeper builds a general gatekeeper for a spec.
	NewGeneralGatekeeper = gatekeeper.NewGeneral
)
